// Package fleet is the sharded multi-connection runtime: it hosts
// many MPTCP connections — each a self-contained netsim world — and
// drives them concurrently from a small set of per-core shards, each
// shard running a batched event loop (hashed timer wheel + ready
// batch) over its connection subset. It is the deployment story of
// the programming model: application-defined schedulers only pay off
// when one host can run them for a whole fleet of connections, which
// is also the regime where the cross-connection shared state
// (internal/xstate) and fleet observability (internal/obs Aggregator)
// built by earlier layers become meaningful.
//
// Design rules:
//
//   - Every connection owns its engine, links and randomness, seeded
//     from the fleet seed and the connection index only. A
//     connection's trajectory therefore never depends on which shard
//     services it or how many shards exist — the property the
//     shard-count invariance test pins.
//   - A shard is one goroutine. It never touches another shard's
//     connections, so connection code runs exactly as single-threaded
//     as it does under a lone netsim engine. Cross-shard coupling
//     happens only through the xstate store's epoch snapshots and the
//     obs Aggregator's atomics, both designed for concurrent readers.
//   - Shards batch: instead of one goroutine per connection (100k
//     goroutines, each mostly idle) the wheel files each connection at
//     the slice of its next engine event and the loop services only
//     the due batch per slice, advancing each serviced engine with one
//     RunUntil call.
//
// See docs/FLEET.md for the architecture and soak-mode usage.
package fleet

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"time"

	"progmp/internal/guard"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/xstate"
)

// Config parameterizes a fleet run. NewScheduler is required;
// everything else has serviceable defaults.
type Config struct {
	// Conns is the number of concurrent connections (default 1).
	Conns int
	// Shards is the number of shard loops (default GOMAXPROCS).
	Shards int
	// Seed derives every connection's private seed (splitmix-mixed
	// with the connection index).
	Seed int64
	// Duration is the virtual soak horizon (default 2s).
	Duration time.Duration
	// SendBytes is the per-burst transfer size (default 16 KiB). Each
	// connection sends bursts back-to-back separated by Think until
	// the horizon.
	SendBytes int
	// Think is the idle gap between a burst's final ACK and the next
	// burst (default 100 ms). Connection starts are staggered across
	// one Think period to avoid a synchronized thundering herd.
	Think time.Duration
	// Slice is the wheel's batching quantum (default 5 ms of virtual
	// time). Smaller slices service connections closer to their event
	// times per pass; larger slices amortize loop overhead. Per-
	// connection trajectories do not depend on it.
	Slice time.Duration
	// LossProb applies Bernoulli loss to the secondary path of every
	// connection world (default 0).
	LossProb float64
	// DestGroups spreads connections across that many distinct
	// destination identities per path (subflow names "wifi.gN" /
	// "lte.gN" with N = connection index mod DestGroups), so a
	// churning fleet feeds — and, as connections retire, lets the
	// shard sweeps evict — many shared-store destination records.
	// Also multiplies per-subflow metric names in the shard
	// registries, so keep it modest. 0 shares one identity per path
	// fleet-wide.
	DestGroups int
	// NewScheduler builds one scheduler instance per shard (a shard is
	// single-threaded, so its connections share the instance; VM
	// programs execute statelessly). Required.
	NewScheduler func() (mptcp.Scheduler, error)
	// Program names the scheduler for guard fleet enrollment and
	// aggregator labels.
	Program string
	// Guard supervises every connection (panic recovery, validation,
	// quarantine) and enrolls it in a per-shard guard.Fleet. Note that
	// fleet-wide blocking couples connections within a shard, so
	// guarded runs are deterministic per shard count, not across shard
	// counts.
	Guard bool
	// Store attaches the cross-connection shared-state store to every
	// connection; shard loops sweep idle destination records out of it
	// as connections retire.
	Store *xstate.Store
	// Agg receives each shard's metrics registry as a labeled source
	// (conn label "shard0", "shard1", ...). Nil: the run builds a
	// private aggregator; either way Result quantiles come from the
	// fleet merge.
	Agg *obs.Aggregator
	// Conservation attaches a ConservationChecker to every connection
	// and collects violations into the result (tests, CI smoke).
	Conservation bool
}

func (c *Config) applyDefaults() error {
	if c.NewScheduler == nil {
		return fmt.Errorf("fleet: Config.NewScheduler is required")
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Shards <= 0 {
		c.Shards = stdruntime.GOMAXPROCS(0)
	}
	if c.Shards > c.Conns {
		c.Shards = c.Conns
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.SendBytes <= 0 {
		c.SendBytes = 16 << 10
	}
	if c.Think <= 0 {
		c.Think = 100 * time.Millisecond
	}
	if c.Slice <= 0 {
		c.Slice = 5 * time.Millisecond
	}
	return nil
}

// ConnSummary is one connection's end-of-run accounting.
type ConnSummary struct {
	// Delivered is the in-order byte count the receiver handed to the
	// application.
	Delivered int64
	// Segments counts in-order delivered segments.
	Segments int64
	// Bursts counts transfers started (the final one may still be in
	// flight at the horizon).
	Bursts int
	// Acked reports whether the send buffer fully drained by the
	// horizon.
	Acked bool
}

// Result is the fleet run's outcome.
type Result struct {
	Conns  int
	Shards int
	// VirtualDuration is the soak horizon; Wall the host time spent.
	VirtualDuration time.Duration
	Wall            time.Duration
	// DeliveredBytes sums in-order deliveries across the fleet.
	DeliveredBytes int64
	// Bursts counts transfers started across the fleet.
	Bursts int64
	// Acked counts connections whose send buffer fully drained.
	Acked int
	// BytesPerConn is the steady-state heap cost per connection world
	// (links, queues, engine, receiver), measured across construction.
	BytesPerConn int64
	// DecisionP50NS/P99NS are fleet quantiles of the scheduler
	// decision latency (wall ns per execution, conn.sched_exec_ns).
	DecisionP50NS, DecisionP99NS int64
	// DeliveryP50US/P99US are fleet quantiles of delivery latency:
	// virtual µs from burst enqueue to each in-order delivery.
	DeliveryP50US, DeliveryP99US int64
	// Events counts fired engine events across the fleet.
	Events int64
	// EvictedDests counts shared-store destination records reclaimed
	// by the shard sweeps.
	EvictedDests int64
	// ConservationViolations collects checker findings when
	// Config.Conservation is set (nil means every connection clean).
	ConservationViolations []string
	// PerConn holds one summary per connection, indexed by connection
	// index.
	PerConn []ConnSummary
}

// Run builds the fleet, drives every shard to the horizon, and
// reports the merged outcome.
func Run(cfg Config) (Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Result{}, err
	}
	agg := cfg.Agg
	if agg == nil {
		agg = obs.NewAggregator()
	}

	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		sched, err := cfg.NewScheduler()
		if err != nil {
			return Result{}, fmt.Errorf("fleet: shard %d scheduler: %w", i, err)
		}
		shards[i] = newShard(i, &cfg, sched)
		agg.Attach(obs.Labels{Conn: fmt.Sprintf("shard%d", i), Scheduler: cfg.Program}, shards[i].reg)
	}

	// Steady-state memory: the heap growth across constructing every
	// connection world, after a full GC on both sides of the build.
	var msBefore, msAfter stdruntime.MemStats
	stdruntime.GC()
	stdruntime.ReadMemStats(&msBefore)
	for i := 0; i < cfg.Conns; i++ {
		sh := shards[i%cfg.Shards]
		fc, err := buildConn(&cfg, i, sh)
		if err != nil {
			return Result{}, err
		}
		sh.conns = append(sh.conns, fc)
	}
	stdruntime.GC()
	stdruntime.ReadMemStats(&msAfter)
	bytesPerConn := int64(msAfter.HeapAlloc-msBefore.HeapAlloc) / int64(cfg.Conns)

	start := time.Now()
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run()
		}(sh)
	}
	wg.Wait()

	res := Result{
		Conns:           cfg.Conns,
		Shards:          cfg.Shards,
		VirtualDuration: cfg.Duration,
		Wall:            time.Since(start),
		BytesPerConn:    bytesPerConn,
		PerConn:         make([]ConnSummary, cfg.Conns),
	}
	for _, sh := range shards {
		res.EvictedDests += sh.evicted
		for _, fc := range sh.conns {
			sum := ConnSummary{
				Delivered: fc.conn.Receiver().DeliveredBytes,
				Segments:  fc.conn.Receiver().DeliveredSegments,
				Bursts:    fc.bursts,
				Acked:     fc.conn.AllAcked(),
			}
			res.PerConn[fc.idx] = sum
			res.DeliveredBytes += sum.Delivered
			res.Bursts += int64(sum.Bursts)
			if sum.Acked {
				res.Acked++
			}
		}
	}
	res.ConservationViolations = collectViolations(shards, cfg.Conns)
	snap := agg.Aggregate()
	if h, ok := snap.Hists["conn.sched_exec_ns"]; ok {
		res.DecisionP50NS, res.DecisionP99NS = h.P50, h.P99
	}
	if h, ok := snap.Hists["fleet.delivery_us"]; ok {
		res.DeliveryP50US, res.DeliveryP99US = h.P50, h.P99
	}
	res.Events = snap.Counters["engine.events"]
	return res, nil
}

// conservation is the slice of the checker's surface the result
// assembly needs; tests substitute a fake to pin the violation
// report's ordering without having to manufacture a real violation.
type conservation interface{ Violations() []string }

// collectViolations flattens every connection's conservation findings
// in connection-index order. Shards run concurrently and shard
// membership is an accident of the split, so appending in shard order
// would make the report depend on the shard count; indexing by fc.idx
// keeps it byte-identical for the same fleet however it is sharded.
func collectViolations(shards []*shard, conns int) []string {
	per := make([][]string, conns)
	for _, sh := range shards {
		for _, fc := range sh.conns {
			if fc.check != nil {
				per[fc.idx] = fc.check.Violations()
			}
		}
	}
	var out []string
	for _, v := range per {
		out = append(out, v...)
	}
	return out
}

// fleetConn is one connection world: a private engine, its links, and
// the burst driver state.
type fleetConn struct {
	idx   int
	eng   *netsim.Engine
	conn  *mptcp.Conn
	check conservation

	burstStart time.Duration
	bursts     int
	retired    bool
}

// connSeed derives the connection's private seed from the fleet seed
// and the connection index alone, so shard assignment can never alter
// a trajectory.
//
//progmp:deterministic
func connSeed(fleetSeed int64, idx int) int64 {
	return int64(netsim.Mix64(uint64(fleetSeed)*0x9e3779b97f4a7c15 + uint64(idx)))
}

// buildConn constructs connection idx's world and files it with its
// shard's driver state (registry handles, delivery probes, burst
// schedule). The world depends only on cfg and idx.
//
// buildConn constructs deterministically from the connection seed
// alone; the run-loop determinism zone (//progmp:deterministic) starts
// at shard.run, and seed reproducibility of construction is covered by
// TestFleetDeterminism.
func buildConn(cfg *Config, idx int, sh *shard) (*fleetConn, error) {
	eng := netsim.NewEngineCompact(connSeed(cfg.Seed, idx))
	eng.Instrument(sh.reg)
	fc := &fleetConn{idx: idx, eng: eng}
	conn := mptcp.NewConn(eng, mptcp.Config{Store: cfg.Store})
	fc.conn = conn

	var loss netsim.LossModel
	if cfg.LossProb > 0 {
		loss = netsim.BernoulliLoss{P: cfg.LossProb}
	}
	wifiName, lteName := "wifi", "lte"
	if cfg.DestGroups > 0 {
		g := idx % cfg.DestGroups
		wifiName = fmt.Sprintf("wifi.g%d", g)
		lteName = fmt.Sprintf("lte.g%d", g)
	}
	wifi := netsim.NewLink(eng, netsim.PathConfig{
		Name: wifiName, Rate: netsim.ConstantRate(3e6), Delay: 5 * time.Millisecond,
	})
	lte := netsim.NewLink(eng, netsim.PathConfig{
		Name: lteName, Rate: netsim.ConstantRate(8e6), Delay: 20 * time.Millisecond, Loss: loss,
	})
	if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: wifiName, Link: wifi}); err != nil {
		return nil, err
	}
	if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: lteName, Link: lte, Backup: true}); err != nil {
		return nil, err
	}

	if cfg.Guard {
		sup := guard.New(sh.sched, guard.Config{
			Now:   eng.Now,
			After: func(d time.Duration, fn func()) { eng.After(d, fn) },
			Wake:  conn.Kick,
		})
		conn.SetScheduler(sup)
		sup.Instrument(nil, conn.TraceConnID(), sh.reg)
		sh.fleet.Enroll(cfg.Program, sup)
	} else {
		conn.SetScheduler(sh.sched)
	}
	// Shard-level instrumentation: every connection of the shard
	// resolves the same named handles, so counters sum and the
	// decision-latency histogram spans the shard's population.
	conn.Instrument(nil, sh.reg)

	if cfg.Conservation {
		fc.check = mptcp.NewConservationChecker(conn)
	}
	conn.Receiver().AddDeliveryHook(func(_ int64, _ int, at time.Duration) {
		sh.mDelivUS.Observe((at - fc.burstStart).Microseconds())
	})

	// Burst driver: send, wait for the final ACK, think, repeat until
	// the horizon. OnAllAcked is one-shot, so each burst re-arms it.
	var startBurst func()
	onAcked := func() {
		if fc.eng.Now()+cfg.Think <= cfg.Duration {
			fc.eng.After(cfg.Think, startBurst)
		}
	}
	startBurst = func() {
		fc.burstStart = fc.eng.Now()
		fc.bursts++
		fc.conn.OnAllAcked(onAcked)
		fc.conn.Send(cfg.SendBytes, 0)
	}
	stagger := time.Duration(idx%997) * cfg.Think / 997
	eng.At(stagger, startBurst)
	return fc, nil
}
