// Package envtest provides builders for scheduler execution environments
// and a generator of random well-typed scheduler programs. It backs the
// unit tests of the individual back-ends and the differential property
// tests that assert interpreter ≡ compiled closures ≡ bytecode VM.
package envtest

import (
	"fmt"
	"math/rand"
	"strings"

	"progmp/internal/runtime"
)

// SbfSpec describes a subflow snapshot for tests.
type SbfSpec struct {
	ID         int
	RTT        int64 // µs
	RTTAvg     int64
	RTTVar     int64
	Cwnd       int64
	InFlight   int64
	Queued     int64
	Throughput int64
	MSS        int64
	LostSkbs   int64
	RTO        int64
	Lossy      bool
	TSQ        bool
	Backup     bool
	RWndFree   int64
	// The shared-state environment extension: link-queue occupancy and
	// the cross-connection per-destination statistics (0 when no store
	// is attached, matching the substrate).
	LinkQueued int64
	XRTT       int64
	XLost      int64
	XDelivered int64
	XQuar      int64
}

// NewSubflow builds a subflow view. Zero-valued fields get sensible
// defaults (MSS 1460, RWndFree 1 MB) so specs stay terse.
func NewSubflow(s SbfSpec) *runtime.SubflowView {
	if s.MSS == 0 {
		s.MSS = 1460
	}
	if s.RWndFree == 0 {
		s.RWndFree = 1 << 20
	}
	if s.RTTAvg == 0 {
		s.RTTAvg = s.RTT
	}
	v := &runtime.SubflowView{
		Handle:        runtime.SubflowHandle(1000 + s.ID),
		RWndFreeBytes: s.RWndFree,
	}
	v.Ints[runtime.SbfID] = int64(s.ID)
	v.Ints[runtime.SbfRTT] = s.RTT
	v.Ints[runtime.SbfRTTAvg] = s.RTTAvg
	v.Ints[runtime.SbfRTTVar] = s.RTTVar
	v.Ints[runtime.SbfCwnd] = s.Cwnd
	v.Ints[runtime.SbfSkbsInFlight] = s.InFlight
	v.Ints[runtime.SbfQueued] = s.Queued
	v.Ints[runtime.SbfThroughput] = s.Throughput
	v.Ints[runtime.SbfMSS] = s.MSS
	v.Ints[runtime.SbfLostSkbs] = s.LostSkbs
	v.Ints[runtime.SbfRTO] = s.RTO
	v.Ints[runtime.SbfLinkQueued] = s.LinkQueued
	v.Ints[runtime.SbfXRTT] = s.XRTT
	v.Ints[runtime.SbfXLost] = s.XLost
	v.Ints[runtime.SbfXDelivered] = s.XDelivered
	v.Ints[runtime.SbfXQuar] = s.XQuar
	v.Bools[runtime.SbfLossy] = s.Lossy
	v.Bools[runtime.SbfTSQThrottled] = s.TSQ
	v.Bools[runtime.SbfIsBackup] = s.Backup
	return v
}

// PktSpec describes a packet snapshot for tests.
type PktSpec struct {
	Seq        int64
	Size       int64
	Prop       int64
	SentCount  int64
	AgeUS      int64
	LastSentUS int64 // µs since last transmission; 0 means "derive"
	SentOn     []int // subflow IDs the packet was transmitted on
}

// NewPacket builds a packet view. Size defaults to 1460.
func NewPacket(s PktSpec) *runtime.PacketView {
	if s.Size == 0 {
		s.Size = 1460
	}
	v := &runtime.PacketView{Handle: runtime.PacketHandle(10000 + s.Seq)}
	v.Ints[runtime.PktSeq] = s.Seq
	v.Ints[runtime.PktSize] = s.Size
	v.Ints[runtime.PktProp] = s.Prop
	v.Ints[runtime.PktSentCount] = s.SentCount
	v.Ints[runtime.PktAgeUS] = s.AgeUS
	if s.LastSentUS != 0 {
		v.Ints[runtime.PktLastSentUS] = s.LastSentUS
	} else if s.SentCount > 0 || len(s.SentOn) > 0 {
		v.Ints[runtime.PktLastSentUS] = s.AgeUS
	} else {
		v.Ints[runtime.PktLastSentUS] = -1
	}
	for _, id := range s.SentOn {
		v.SentOnMask |= 1 << uint(id)
	}
	return v
}

// EnvSpec assembles a full environment.
type EnvSpec struct {
	Subflows  []SbfSpec
	Q, QU, RQ []PktSpec
	Regs      [runtime.NumRegisters]int64
}

// Build constructs the runtime environment described by the spec.
func (s EnvSpec) Build() *runtime.Env {
	sbfs := make([]*runtime.SubflowView, len(s.Subflows))
	for i, spec := range s.Subflows {
		sbfs[i] = NewSubflow(spec)
	}
	mk := func(id runtime.QueueID, specs []PktSpec) *runtime.Queue {
		pkts := make([]*runtime.PacketView, len(specs))
		for i, p := range specs {
			pkts[i] = NewPacket(p)
		}
		return runtime.NewQueue(id, pkts)
	}
	regs := s.Regs
	return runtime.NewEnv(sbfs,
		mk(runtime.QueueSend, s.Q),
		mk(runtime.QueueUnacked, s.QU),
		mk(runtime.QueueReinject, s.RQ),
		&regs)
}

// TwoSubflowEnv is a canonical two-subflow environment (fast 10 ms WiFi
// path, slow 40 ms LTE backup-capable path) with n packets in Q.
func TwoSubflowEnv(n int) *runtime.Env {
	spec := EnvSpec{
		Subflows: []SbfSpec{
			{ID: 0, RTT: 10000, RTTVar: 500, Cwnd: 10, InFlight: 2, Throughput: 3 << 20},
			{ID: 1, RTT: 40000, RTTVar: 4000, Cwnd: 20, InFlight: 1, Throughput: 8 << 20, Backup: true},
		},
	}
	for i := 0; i < n; i++ {
		spec.Q = append(spec.Q, PktSpec{Seq: int64(i), Size: 1460})
	}
	return spec.Build()
}

// RandomEnv generates a random but well-formed environment: up to 5
// subflows, up to 8 packets per queue, random registers. Deterministic
// given rng.
func RandomEnv(rng *rand.Rand) *runtime.Env {
	spec := EnvSpec{}
	nSbf := rng.Intn(5)
	for i := 0; i < nSbf; i++ {
		spec.Subflows = append(spec.Subflows, SbfSpec{
			ID:         i,
			RTT:        int64(rng.Intn(100000) + 1),
			RTTAvg:     int64(rng.Intn(100000) + 1),
			RTTVar:     int64(rng.Intn(20000)),
			Cwnd:       int64(rng.Intn(64) + 1),
			InFlight:   int64(rng.Intn(32)),
			Queued:     int64(rng.Intn(8)),
			Throughput: int64(rng.Intn(10 << 20)),
			LostSkbs:   int64(rng.Intn(4)),
			RTO:        int64(rng.Intn(1000000)),
			Lossy:      rng.Intn(4) == 0,
			TSQ:        rng.Intn(4) == 0,
			Backup:     rng.Intn(3) == 0,
			RWndFree:   int64(rng.Intn(1 << 16)),
		})
	}
	seq := int64(0)
	fill := func() []PktSpec {
		var out []PktSpec
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			p := PktSpec{
				Seq:       seq,
				Size:      int64(rng.Intn(1460) + 1),
				Prop:      int64(rng.Intn(4)),
				SentCount: int64(rng.Intn(3)),
				AgeUS:     int64(rng.Intn(100000)),
			}
			for id := 0; id < nSbf; id++ {
				if rng.Intn(2) == 0 {
					p.SentOn = append(p.SentOn, id)
				}
			}
			seq++
			out = append(out, p)
		}
		return out
	}
	spec.Q = fill()
	spec.QU = fill()
	spec.RQ = fill()
	for i := range spec.Regs {
		spec.Regs[i] = int64(rng.Intn(200) - 100)
	}
	env := spec.Build()
	for i := range env.Globals {
		env.Globals[i] = int64(rng.Intn(200) - 100)
	}
	return env
}

// ---- Random program generation ----

// progGen emits random well-typed scheduler programs for differential
// testing. Generated programs exercise every member kind, operator, and
// statement form, while respecting the single-assignment and
// effect-position rules so they always type-check.
type progGen struct {
	rng     *rand.Rand
	b       strings.Builder
	nextVar int
	// scopes of declared variables by type name.
	scope map[string][]string
	depth int
}

// GenProgram returns a random well-typed program (source text).
func GenProgram(rng *rand.Rand) string {
	g := &progGen{rng: rng, scope: map[string][]string{}}
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		g.stmt(0)
	}
	return g.b.String()
}

func (g *progGen) fresh() string {
	g.nextVar++
	return fmt.Sprintf("v%d", g.nextVar)
}

func (g *progGen) pick(vals ...string) string { return vals[g.rng.Intn(len(vals))] }

// intExpr produces an int-typed expression. ctx names a lambda
// parameter in scope typed sbf/pkt ("" when none).
func (g *progGen) intExpr(depth int, sbfVar, pktVar string) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(2000)-1000)
		case 1:
			if g.rng.Intn(4) == 0 {
				return fmt.Sprintf("G%d", 1+g.rng.Intn(4))
			}
			return fmt.Sprintf("R%d", 1+g.rng.Intn(4))
		case 2:
			if sbfVar != "" {
				prop := g.pick("RTT", "RTT_AVG", "RTT_VAR", "CWND", "SKBS_IN_FLIGHT", "QUEUED", "THROUGHPUT", "MSS", "ID", "LOST_SKBS", "RTO")
				return sbfVar + "." + prop
			}
			return fmt.Sprintf("%d", g.rng.Intn(100))
		default:
			if pktVar != "" {
				prop := g.pick("SIZE", "SEQ", "PROP", "SENT_COUNT", "AGE_US")
				return pktVar + "." + prop
			}
			if vars := g.scope["int"]; len(vars) > 0 {
				return vars[g.rng.Intn(len(vars))]
			}
			return fmt.Sprintf("%d", g.rng.Intn(100))
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth+1, sbfVar, pktVar), g.pick("+", "-", "*", "/", "%"), g.intExpr(depth+1, sbfVar, pktVar))
	case 1:
		return fmt.Sprintf("-%s", g.intExpr(depth+1, sbfVar, pktVar))
	case 2:
		return g.pick("Q", "QU", "RQ") + g.pick(".COUNT", ".BYTES")
	case 3:
		return "SUBFLOWS.COUNT"
	case 4:
		return fmt.Sprintf("SUBFLOWS.FILTER(f%s => %s).COUNT", g.fresh(), "TRUE")
	default:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth+1, sbfVar, pktVar), g.intExpr(depth+1, sbfVar, pktVar))
	}
}

// boolExpr produces a bool-typed expression.
func (g *progGen) boolExpr(depth int, sbfVar, pktVar string) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(5) {
		case 0:
			return g.pick("TRUE", "FALSE")
		case 1:
			return g.pick("Q", "QU", "RQ") + ".EMPTY"
		case 2:
			return "SUBFLOWS.EMPTY"
		case 3:
			if sbfVar != "" {
				return sbfVar + "." + g.pick("LOSSY", "TSQ_THROTTLED", "IS_BACKUP")
			}
			return "TRUE"
		default:
			if pktVar != "" && g.rng.Intn(2) == 0 {
				v := g.fresh()
				return fmt.Sprintf("%s.SENT_ON(SUBFLOWS.MIN(%s => %s.ID))", pktVar, v, v)
			}
			return fmt.Sprintf("(%s %s %s)", g.intExpr(depth+1, sbfVar, pktVar), g.pick("<", "<=", ">", ">=", "==", "!="), g.intExpr(depth+1, sbfVar, pktVar))
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s AND %s)", g.boolExpr(depth+1, sbfVar, pktVar), g.boolExpr(depth+1, sbfVar, pktVar))
	case 1:
		return fmt.Sprintf("(%s OR %s)", g.boolExpr(depth+1, sbfVar, pktVar), g.boolExpr(depth+1, sbfVar, pktVar))
	case 2:
		return "!" + g.boolExpr(depth+1, sbfVar, pktVar)
	case 3:
		return fmt.Sprintf("(%s != NULL)", g.pktExpr(depth+1))
	default:
		return fmt.Sprintf("(%s == NULL)", g.sbfExpr(depth+1))
	}
}

func (g *progGen) sbfExpr(depth int) string {
	v := g.fresh()
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("SUBFLOWS.MIN(%s => %s)", v, g.intExpr(depth+1, v, ""))
	case 1:
		return fmt.Sprintf("SUBFLOWS.MAX(%s => %s)", v, g.intExpr(depth+1, v, ""))
	default:
		return fmt.Sprintf("SUBFLOWS.GET(%s)", g.intExpr(depth+1, "", ""))
	}
}

func (g *progGen) sbfListExpr(depth int) string {
	if g.rng.Intn(2) == 0 {
		return "SUBFLOWS"
	}
	v := g.fresh()
	return fmt.Sprintf("SUBFLOWS.FILTER(%s => %s)", v, g.boolExpr(depth+1, v, ""))
}

func (g *progGen) queueExpr(depth int) string {
	base := g.pick("Q", "QU", "RQ")
	if g.rng.Intn(2) == 0 {
		return base
	}
	v := g.fresh()
	return fmt.Sprintf("%s.FILTER(%s => %s)", base, v, g.boolExpr(depth+1, "", v))
}

func (g *progGen) pktExpr(depth int) string {
	q := g.queueExpr(depth + 1)
	if g.rng.Intn(3) == 0 {
		v := g.fresh()
		return fmt.Sprintf("%s.%s(%s => %s)", q, g.pick("MIN", "MAX"), v, g.intExpr(depth+1, "", v))
	}
	return q + ".TOP"
}

func (g *progGen) line(depth int, format string, args ...any) {
	for i := 0; i < depth; i++ {
		g.b.WriteString("    ")
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString("\n")
}

func (g *progGen) stmt(depth int) {
	if g.depth > 3 {
		g.line(depth, "SET(R%d, %s);", 1+g.rng.Intn(8), g.intExpr(0, "", ""))
		return
	}
	switch g.rng.Intn(8) {
	case 0: // IF
		g.depth++
		g.line(depth, "IF (%s) {", g.boolExpr(0, "", ""))
		mark := len(g.scope["int"])
		g.stmt(depth + 1)
		g.scope["int"] = g.scope["int"][:mark]
		if g.rng.Intn(2) == 0 {
			g.line(depth, "} ELSE {")
			g.stmt(depth + 1)
			g.scope["int"] = g.scope["int"][:mark]
		}
		g.line(depth, "}")
		g.depth--
	case 1: // VAR int
		v := g.fresh()
		g.line(depth, "VAR %s = %s;", v, g.intExpr(0, "", ""))
		g.scope["int"] = append(g.scope["int"], v)
	case 2: // FOREACH with PUSH
		g.depth++
		v := g.fresh()
		g.line(depth, "FOREACH (VAR %s IN %s) {", v, g.sbfListExpr(0))
		switch g.rng.Intn(3) {
		case 0:
			g.line(depth+1, "%s.PUSH(%s);", v, g.pktExpr(0))
		case 1:
			g.line(depth+1, "%s.PUSH(%s.POP());", v, g.pick("Q", "QU", "RQ"))
		default:
			g.line(depth+1, "SET(R%d, %s.RTT);", 1+g.rng.Intn(8), v)
		}
		g.line(depth, "}")
		g.depth--
	case 3: // SET / GSET
		if g.rng.Intn(4) == 0 {
			g.line(depth, "GSET(G%d, %s);", 1+g.rng.Intn(8), g.intExpr(0, "", ""))
		} else {
			g.line(depth, "SET(R%d, %s);", 1+g.rng.Intn(8), g.intExpr(0, "", ""))
		}
	case 4: // PUSH pop
		g.line(depth, "%s.PUSH(%s.POP());", g.sbfExpr(0), g.pick("Q", "QU", "RQ"))
	case 5: // PUSH top
		g.line(depth, "%s.PUSH(%s);", g.sbfExpr(0), g.pktExpr(0))
	case 6: // DROP
		g.line(depth, "DROP(%s.POP());", g.pick("Q", "RQ"))
	default: // RETURN guarded so programs don't trivially end
		g.depth++
		g.line(depth, "IF (%s) { RETURN; }", g.boolExpr(0, "", ""))
		g.depth--
	}
}

// StripSites returns a copy of actions with the decision-site metadata
// zeroed. Sites are intentionally back-end-specific (source lines for
// the interpreter and compiled closures, bytecode pcs for the VM), so
// differential tests comparing semantics across back-ends must ignore
// them.
func StripSites(actions []runtime.Action) []runtime.Action {
	out := make([]runtime.Action, len(actions))
	copy(out, actions)
	for i := range out {
		out[i].Site = 0
	}
	return out
}

// SameActions reports semantic action-queue equality, ignoring the
// back-end-specific decision sites.
func SameActions(a, b []runtime.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		x.Site, y.Site = 0, 0
		if x != y {
			return false
		}
	}
	return true
}
