package lang

import (
	"testing"
)

// FuzzParse asserts the front-end's robustness contract: Parse never
// panics, and accepted programs reformat to text that parses again to
// a stable canonical form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
		"VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);",
		"SET(R1, R1 + 1);",
		"FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(Q.TOP); }",
		"DROP(RQ.POP());",
		"IF (Q.TOP != NULL) { RETURN; } ELSE IF (QU.EMPTY) { SET(R8, 0); }",
		"VAR x = (1 + 2) * -3 / R4 % 7;",
		"IF (TRUE) {",
		"))))(((",
		"VAR VAR VAR",
		"/* unterminated",
		"// only a comment",
		"",
		"\x00\xff",
		"R9 R0 R1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		formatted := prog.Format()
		prog2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\noriginal: %q\nformatted: %q", err, src, formatted)
		}
		if again := prog2.Format(); again != formatted {
			t.Fatalf("formatting is not a fixpoint:\nfirst:  %q\nsecond: %q", formatted, again)
		}
	})
}
