// Package lang implements the front-end of the ProgMP scheduler
// specification language: tokens, lexer, abstract syntax tree, and parser.
//
// The language follows the programming model of Frömmgen et al.
// (Middleware 2017): declarative subflow and packet selection over the
// queues Q, QU, RQ and the subflow set SUBFLOWS, single-assignment
// variables, and side effects restricted to PUSH, DROP and SET.
package lang

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds. Keyword kinds are recognized case-sensitively (the language
// uses upper-case keywords, as in the paper's listings).
const (
	// Special.
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // sbf, skb, ...
	NUMBER // 123
	REG    // R1 .. R8
	GREG   // G1 .. G8 (shared global registers)

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	COMMA     // ,
	SEMICOLON // ;
	DOT       // .
	ARROW     // =>
	ASSIGN    // =

	// Operators.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	EQ      // ==
	NEQ     // !=
	LT      // <
	LTE     // <=
	GT      // >
	GTE     // >=
	NOT     // !

	// Keyword operators.
	AND // AND
	OR  // OR

	// Keywords.
	IF      // IF
	ELSE    // ELSE
	VAR     // VAR
	FOREACH // FOREACH
	IN      // IN
	SET     // SET
	GSET    // GSET (write a shared global register)
	DROP    // DROP
	RETURN  // RETURN
	TRUE    // TRUE
	FALSE   // FALSE
	NULL    // NULL

	// Built-in entities.
	Q        // sending queue
	QU       // unacknowledged (in-flight) queue
	RQ       // reinjection queue
	SUBFLOWS // set of subflows
)

var kindNames = map[Kind]string{
	EOF:       "EOF",
	ILLEGAL:   "ILLEGAL",
	IDENT:     "IDENT",
	NUMBER:    "NUMBER",
	REG:       "REG",
	GREG:      "GREG",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	COMMA:     ",",
	SEMICOLON: ";",
	DOT:       ".",
	ARROW:     "=>",
	ASSIGN:    "=",
	PLUS:      "+",
	MINUS:     "-",
	STAR:      "*",
	SLASH:     "/",
	PERCENT:   "%",
	EQ:        "==",
	NEQ:       "!=",
	LT:        "<",
	LTE:       "<=",
	GT:        ">",
	GTE:       ">=",
	NOT:       "!",
	AND:       "AND",
	OR:        "OR",
	IF:        "IF",
	ELSE:      "ELSE",
	VAR:       "VAR",
	FOREACH:   "FOREACH",
	IN:        "IN",
	SET:       "SET",
	GSET:      "GSET",
	DROP:      "DROP",
	RETURN:    "RETURN",
	TRUE:      "TRUE",
	FALSE:     "FALSE",
	NULL:      "NULL",
	Q:         "Q",
	QU:        "QU",
	RQ:        "RQ",
	SUBFLOWS:  "SUBFLOWS",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"AND":      AND,
	"OR":       OR,
	"NOT":      NOT,
	"IF":       IF,
	"ELSE":     ELSE,
	"VAR":      VAR,
	"FOREACH":  FOREACH,
	"IN":       IN,
	"SET":      SET,
	"GSET":     GSET,
	"DROP":     DROP,
	"RETURN":   RETURN,
	"TRUE":     TRUE,
	"FALSE":    FALSE,
	"NULL":     NULL,
	"Q":        Q,
	"QU":       QU,
	"RQ":       RQ,
	"SUBFLOWS": SUBFLOWS,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, NUMBER, REG, GREG
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, REG, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
