package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasicScheduler(t *testing.T) {
	src := `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
    SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }`
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected lex errors: %v", errs)
	}
	want := []Kind{
		IF, LPAREN, NOT, Q, DOT, IDENT, AND, NOT, SUBFLOWS, DOT, IDENT, RPAREN, LBRACE,
		SUBFLOWS, DOT, IDENT, LPAREN, IDENT, ARROW, IDENT, DOT, IDENT, RPAREN,
		DOT, IDENT, LPAREN, Q, DOT, IDENT, LPAREN, RPAREN, RPAREN, SEMICOLON, RBRACE,
		EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d\n%s", len(got), len(want), FormatTokens(toks))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	tests := []struct {
		src  string
		want Kind
	}{
		{"==", EQ}, {"!=", NEQ}, {"<=", LTE}, {">=", GTE}, {"<", LT}, {">", GT},
		{"+", PLUS}, {"-", MINUS}, {"*", STAR}, {"/", SLASH}, {"%", PERCENT},
		{"=>", ARROW}, {"=", ASSIGN}, {"!", NOT}, {"&&", AND}, {"||", OR},
	}
	for _, tc := range tests {
		toks, errs := Tokenize(tc.src)
		if len(errs) != 0 {
			t.Errorf("%q: lex errors %v", tc.src, errs)
			continue
		}
		if toks[0].Kind != tc.want {
			t.Errorf("%q: kind = %s, want %s", tc.src, toks[0].Kind, tc.want)
		}
	}
}

func TestTokenizeRegisters(t *testing.T) {
	toks, errs := Tokenize("R1 R8 R9 R0 RA Rx")
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	want := []Kind{REG, REG, IDENT, IDENT, IDENT, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d (%s) = %s, want %s", i, toks[i].Lit, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := "IF // line comment with IF ELSE tokens\n/* block\ncomment */ ELSE"
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	want := []Kind{IF, ELSE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeUnterminatedBlockComment(t *testing.T) {
	_, errs := Tokenize("/* never closed")
	if len(errs) == 0 {
		t.Fatal("expected an error for unterminated block comment")
	}
	if !strings.Contains(errs[0].Error(), "unterminated") {
		t.Errorf("error = %v, want mention of unterminated comment", errs[0])
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, _ := Tokenize("IF\n  VAR")
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("IF pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("VAR pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestTokenizeIllegal(t *testing.T) {
	toks, errs := Tokenize("@")
	if len(errs) == 0 {
		t.Fatal("expected lex error for @")
	}
	if toks[0].Kind != ILLEGAL {
		t.Errorf("kind = %s, want ILLEGAL", toks[0].Kind)
	}
}

func TestKeywordsAreCaseSensitive(t *testing.T) {
	toks, _ := Tokenize("if If iF")
	for i := 0; i < 3; i++ {
		if toks[i].Kind != IDENT {
			t.Errorf("token %d = %s, want IDENT (keywords are upper-case)", i, toks[i].Kind)
		}
	}
}
