package lang

import (
	"strings"
	"testing"
)

func TestParseMinRTTScheduler(t *testing.T) {
	src := `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
    SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Stmts) != 1 {
		t.Fatalf("got %d statements, want 1", len(prog.Stmts))
	}
	ifStmt, ok := prog.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("statement is %T, want *IfStmt", prog.Stmts[0])
	}
	push, ok := ifStmt.Then.Stmts[0].(*PushStmt)
	if !ok {
		t.Fatalf("inner statement is %T, want *PushStmt", ifStmt.Then.Stmts[0])
	}
	min, ok := push.Target.(*MemberExpr)
	if !ok || min.Name != "MIN" {
		t.Fatalf("push target = %s, want SUBFLOWS.MIN(...)", FormatExpr(push.Target))
	}
	if _, ok := min.Args[0].(*Lambda); !ok {
		t.Fatalf("MIN argument is %T, want *Lambda", min.Args[0])
	}
	pop, ok := push.Arg.(*MemberExpr)
	if !ok || pop.Name != "POP" || !pop.HasParens {
		t.Fatalf("push arg = %s, want Q.POP()", FormatExpr(push.Arg))
	}
}

func TestParseRoundRobinScheduler(t *testing.T) {
	src := `VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
IF (!Q.EMPTY) {
    VAR sbf = sbfs.GET(R1);
    IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
        sbf.PUSH(Q.POP());
    }
    SET(R1, R1 + 1);
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Stmts) != 3 {
		t.Fatalf("got %d top-level statements, want 3", len(prog.Stmts))
	}
	decl, ok := prog.Stmts[0].(*VarDecl)
	if !ok || decl.Name != "sbfs" {
		t.Fatalf("first statement = %T, want VAR sbfs", prog.Stmts[0])
	}
	set, ok := prog.Stmts[1].(*IfStmt).Then.Stmts[0].(*SetStmt)
	if !ok || set.Reg != 0 {
		t.Fatalf("expected SET(R1, ...) with reg index 0, got %+v", prog.Stmts[1])
	}
}

func TestParseForeach(t *testing.T) {
	src := `VAR skb = Q.POP();
FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fe, ok := prog.Stmts[1].(*ForeachStmt)
	if !ok {
		t.Fatalf("statement is %T, want *ForeachStmt", prog.Stmts[1])
	}
	if fe.Name != "sbf" {
		t.Errorf("loop variable = %q, want sbf", fe.Name)
	}
	if _, ok := fe.Iter.(*EntityExpr); !ok {
		t.Errorf("iter = %s, want SUBFLOWS", FormatExpr(fe.Iter))
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"VAR x = 1 + 2 * 3;", "(1 + (2 * 3))"},
		{"VAR x = 1 * 2 + 3;", "((1 * 2) + 3)"},
		{"VAR x = 1 + 2 < 3 + 4;", "((1 + 2) < (3 + 4))"},
		{"VAR x = 1 < 2 == TRUE;", "((1 < 2) == TRUE)"},
		{"VAR x = TRUE OR FALSE AND TRUE;", "(TRUE OR (FALSE AND TRUE))"},
		{"VAR x = !TRUE AND FALSE;", "(!TRUE AND FALSE)"},
		{"VAR x = (1 + 2) * 3;", "((1 + 2) * 3)"},
		{"VAR x = 10 % 3 - 1;", "((10 % 3) - 1)"},
		{"VAR x = -1 + 2;", "(-1 + 2)"},
	}
	for _, tc := range tests {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		got := FormatExpr(prog.Stmts[0].(*VarDecl).Init)
		if got != tc.want {
			t.Errorf("%q parsed as %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	src := `IF (TRUE) { RETURN; } ELSE IF (FALSE) { RETURN; } ELSE { RETURN; }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	outer := prog.Stmts[0].(*IfStmt)
	inner, ok := outer.Else.(*IfStmt)
	if !ok {
		t.Fatalf("ELSE IF parsed as %T, want *IfStmt", outer.Else)
	}
	if _, ok := inner.Else.(*BlockStmt); !ok {
		t.Fatalf("final ELSE parsed as %T, want *BlockStmt", inner.Else)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"missing semicolon", "VAR x = 1", "expected ;"},
		{"naked expression", "Q.TOP;", "PUSH"},
		{"push with two args", "SUBFLOWS.GET(0).PUSH(Q.TOP, Q.TOP);", "exactly one packet argument"},
		{"set without register", "SET(x, 1);", "expected REG"},
		{"unclosed block", "IF (TRUE) { RETURN;", "expected }"},
		{"garbage", "$$$", "illegal character"},
		{"empty parens expr", "VAR x = ();", "unexpected token"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("VAR x = 1;\nVAR y = @;")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should carry line 2 position, got %v", err)
	}
}

func TestParseErrorRecoveryFindsMultipleErrors(t *testing.T) {
	_, err := Parse("VAR x = ;\nVAR y = ;\n")
	if err == nil {
		t.Fatal("expected errors")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if len(pe.Errs) < 2 {
		t.Errorf("got %d errors, want at least 2 (recovery should continue)", len(pe.Errs))
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }`,
		`VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
IF (R1 >= sbfs.COUNT) { SET(R1, 0); }`,
		`VAR skb = Q.POP();
FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }
DROP(RQ.POP());
RETURN;`,
		`IF (Q.COUNT > 2) { RETURN; } ELSE IF (QU.EMPTY) { RETURN; } ELSE { SET(R3, R3 * 2); }`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		formatted := p1.Format()
		p2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("reparse of formatted output failed: %v\n--- formatted:\n%s", err, formatted)
		}
		if got := p2.Format(); got != formatted {
			t.Errorf("format not stable:\nfirst:\n%s\nsecond:\n%s", formatted, got)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on invalid source")
		}
	}()
	MustParse("VAR x = ;")
}

func TestParseIntegerOverflow(t *testing.T) {
	_, err := Parse("VAR x = 99999999999999999999999999;")
	if err == nil {
		t.Fatal("overflowing literal accepted")
	}
	if !strings.Contains(err.Error(), "invalid integer literal") {
		t.Errorf("error = %v, want invalid integer literal", err)
	}
}
