package lang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ParseError aggregates all syntax errors found in a specification.
type ParseError struct {
	Errs []error
}

// Error joins the individual messages, one per line.
func (e *ParseError) Error() string {
	msgs := make([]string, len(e.Errs))
	for i, err := range e.Errs {
		msgs[i] = err.Error()
	}
	return strings.Join(msgs, "\n")
}

// maxParseErrors bounds error accumulation so that pathological input
// cannot blow up diagnostics.
const maxParseErrors = 20

var errTooManyErrors = errors.New("too many syntax errors")

type parser struct {
	toks []Token
	pos  int
	errs []error
}

// Parse parses a complete scheduler specification and returns its AST.
func Parse(src string) (*Program, error) {
	toks, lexErrs := Tokenize(src)
	p := &parser{toks: toks, errs: lexErrs}
	prog := &Program{Source: src}
	func() {
		defer func() {
			if r := recover(); r != nil && r != errTooManyErrors { //nolint:errorlint // sentinel identity
				panic(r)
			}
		}()
		for p.cur().Kind != EOF {
			prog.Stmts = append(prog.Stmts, p.parseStmt())
		}
	}()
	if len(p.errs) > 0 {
		return nil, &ParseError{Errs: p.errs}
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// scheduler specifications that are compile-time constants.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return prog
}

func (p *parser) cur() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	if len(p.errs) >= maxParseErrors {
		panic(errTooManyErrors)
	}
}

func (p *parser) expect(k Kind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		p.sync()
		return Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

// sync skips tokens until a statement boundary to continue parsing
// after an error.
func (p *parser) sync() {
	for {
		switch p.cur().Kind {
		case EOF, RBRACE:
			return
		case SEMICOLON:
			p.next()
			return
		}
		p.next()
	}
}

// ---- Statements ----

func (p *parser) parseStmt() Stmt {
	t := p.cur()
	switch t.Kind {
	case IF:
		return p.parseIf()
	case VAR:
		return p.parseVar()
	case FOREACH:
		return p.parseForeach()
	case SET:
		return p.parseSet()
	case GSET:
		return p.parseGSet()
	case DROP:
		return p.parseDrop()
	case RETURN:
		p.next()
		p.expect(SEMICOLON)
		return &ReturnStmt{RetPos: t.Pos}
	case LBRACE:
		return p.parseBlock()
	default:
		return p.parseExprStmt()
	}
}

func (p *parser) parseBlock() *BlockStmt {
	lb := p.expect(LBRACE)
	blk := &BlockStmt{Lbrace: lb.Pos}
	for !p.at(RBRACE) && !p.at(EOF) {
		blk.Stmts = append(blk.Stmts, p.parseStmt())
	}
	p.expect(RBRACE)
	return blk
}

func (p *parser) parseIf() Stmt {
	ifTok := p.expect(IF)
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	then := p.parseBlock()
	stmt := &IfStmt{IfPos: ifTok.Pos, Cond: cond, Then: then}
	if p.accept(ELSE) {
		if p.at(IF) {
			stmt.Else = p.parseIf()
		} else {
			stmt.Else = p.parseBlock()
		}
	}
	return stmt
}

func (p *parser) parseVar() Stmt {
	varTok := p.expect(VAR)
	name := p.expect(IDENT)
	p.expect(ASSIGN)
	init := p.parseExpr()
	p.expect(SEMICOLON)
	return &VarDecl{VarPos: varTok.Pos, Name: name.Lit, Init: init}
}

func (p *parser) parseForeach() Stmt {
	forTok := p.expect(FOREACH)
	p.expect(LPAREN)
	p.expect(VAR)
	name := p.expect(IDENT)
	p.expect(IN)
	iter := p.parseExpr()
	p.expect(RPAREN)
	body := p.parseBlock()
	return &ForeachStmt{ForPos: forTok.Pos, Name: name.Lit, Iter: iter, Body: body}
}

func (p *parser) parseSet() Stmt {
	setTok := p.expect(SET)
	p.expect(LPAREN)
	reg := p.expect(REG)
	idx := 0
	if len(reg.Lit) == 2 {
		idx = int(reg.Lit[1] - '1')
	}
	p.expect(COMMA)
	val := p.parseExpr()
	p.expect(RPAREN)
	p.expect(SEMICOLON)
	return &SetStmt{SetPos: setTok.Pos, Reg: idx, Value: val}
}

func (p *parser) parseGSet() Stmt {
	setTok := p.expect(GSET)
	p.expect(LPAREN)
	reg := p.expect(GREG)
	idx := 0
	if len(reg.Lit) == 2 {
		idx = int(reg.Lit[1] - '1')
	}
	p.expect(COMMA)
	val := p.parseExpr()
	p.expect(RPAREN)
	p.expect(SEMICOLON)
	return &GSetStmt{SetPos: setTok.Pos, Reg: idx, Value: val}
}

func (p *parser) parseDrop() Stmt {
	dropTok := p.expect(DROP)
	p.expect(LPAREN)
	arg := p.parseExpr()
	p.expect(RPAREN)
	p.expect(SEMICOLON)
	return &DropStmt{DropPos: dropTok.Pos, Arg: arg}
}

// parseExprStmt parses a statement that begins with an expression. The
// programming model restricts these to PUSH calls: side effects are
// only legal as PUSH operations (§3.3 of the paper).
func (p *parser) parseExprStmt() Stmt {
	startPos := p.cur().Pos
	e := p.parseExpr()
	p.expect(SEMICOLON)
	if m, ok := e.(*MemberExpr); ok && m.Name == "PUSH" && m.HasParens {
		if len(m.Args) != 1 {
			p.errorf(m.NamePos, "PUSH takes exactly one packet argument, got %d", len(m.Args))
			return &ReturnStmt{RetPos: startPos}
		}
		return &PushStmt{Target: m.Recv, Arg: m.Args[0], PushAt: m.NamePos}
	}
	p.errorf(startPos, "expression statements must be PUSH operations (side effects are restricted to PUSH)")
	return &ReturnStmt{RetPos: startPos}
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() Expr { return p.parseOr() }

func (p *parser) parseOr() Expr {
	x := p.parseAnd()
	for p.at(OR) {
		p.next()
		y := p.parseAnd()
		x = &BinaryExpr{Op: OR, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAnd() Expr {
	x := p.parseEquality()
	for p.at(AND) {
		p.next()
		y := p.parseEquality()
		x = &BinaryExpr{Op: AND, X: x, Y: y}
	}
	return x
}

func (p *parser) parseEquality() Expr {
	x := p.parseRelational()
	for p.at(EQ) || p.at(NEQ) {
		op := p.next().Kind
		y := p.parseRelational()
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseRelational() Expr {
	x := p.parseAdditive()
	for p.at(LT) || p.at(LTE) || p.at(GT) || p.at(GTE) {
		op := p.next().Kind
		y := p.parseAdditive()
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAdditive() Expr {
	x := p.parseMultiplicative()
	for p.at(PLUS) || p.at(MINUS) {
		op := p.next().Kind
		y := p.parseMultiplicative()
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseMultiplicative() Expr {
	x := p.parseUnary()
	for p.at(STAR) || p.at(SLASH) || p.at(PERCENT) {
		op := p.next().Kind
		y := p.parseUnary()
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseUnary() Expr {
	t := p.cur()
	switch t.Kind {
	case NOT:
		p.next()
		return &UnaryExpr{OpPos: t.Pos, Op: NOT, X: p.parseUnary()}
	case MINUS:
		p.next()
		return &UnaryExpr{OpPos: t.Pos, Op: MINUS, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for p.at(DOT) {
		p.next()
		name := p.expect(IDENT)
		m := &MemberExpr{Recv: x, Name: name.Lit, NamePos: name.Pos}
		if p.accept(LPAREN) {
			m.HasParens = true
			if !p.at(RPAREN) {
				for {
					m.Args = append(m.Args, p.parseCallArg())
					if !p.accept(COMMA) {
						break
					}
				}
			}
			p.expect(RPAREN)
		}
		x = m
	}
	return x
}

// parseCallArg parses a call argument, which may be a lambda
// `param => expr` (used by FILTER/MIN/MAX) or a regular expression.
func (p *parser) parseCallArg() Expr {
	if p.at(IDENT) && p.toks[p.pos+1].Kind == ARROW {
		param := p.next()
		p.expect(ARROW)
		body := p.parseExpr()
		return &Lambda{ParamPos: param.Pos, Param: param.Lit, Body: body}
	}
	return p.parseExpr()
}

func (p *parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q: %v", t.Lit, err)
		}
		return &NumberLit{Pos: t.Pos, Val: v}
	case TRUE:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: true}
	case FALSE:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: false}
	case NULL:
		p.next()
		return &NullLit{Pos: t.Pos}
	case REG:
		p.next()
		return &RegExpr{Pos: t.Pos, Index: int(t.Lit[1] - '1')}
	case GREG:
		p.next()
		return &GlobalExpr{Pos: t.Pos, Index: int(t.Lit[1] - '1')}
	case IDENT:
		p.next()
		return &Ident{Pos: t.Pos, Name: t.Lit}
	case Q:
		p.next()
		return &EntityExpr{Pos: t.Pos, Kind: EntityQ}
	case QU:
		p.next()
		return &EntityExpr{Pos: t.Pos, Kind: EntityQU}
	case RQ:
		p.next()
		return &EntityExpr{Pos: t.Pos, Kind: EntityRQ}
	case SUBFLOWS:
		p.next()
		return &EntityExpr{Pos: t.Pos, Kind: EntitySubflows}
	case LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	default:
		p.errorf(t.Pos, "unexpected token %s in expression", t)
		p.next()
		return &NumberLit{Pos: t.Pos, Val: 0}
	}
}
