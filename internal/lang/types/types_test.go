package types

import (
	"strings"
	"testing"

	"progmp/internal/lang"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Check(prog)
}

func mustCheckOK(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("Check(%q): %v", src, err)
	}
	return info
}

func TestCheckAcceptsPaperSchedulers(t *testing.T) {
	srcs := map[string]string{
		"minRTT": `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
			SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
		}`,
		"roundRobin": `VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
			IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
			IF (!Q.EMPTY) {
				VAR sbf = sbfs.GET(R1);
				IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
					sbf.PUSH(Q.POP());
				}
				SET(R1, R1 + 1);
			}`,
		"redundant": `VAR skb = Q.POP();
			FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }`,
		"opportunisticRedundant": `VAR sbfCandidates = SUBFLOWS.FILTER(sbf => sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
			FOREACH (VAR sbf IN sbfCandidates) {
				VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
				IF (skb != NULL) {
					sbf.PUSH(skb);
				} ELSE {
					sbf.PUSH(Q.POP());
				}
			}`,
		"windowCheck": `VAR minRttSbf = SUBFLOWS.MIN(sbf => sbf.RTT);
			IF (!minRttSbf.HAS_WINDOW_FOR(Q.TOP)) {
				VAR alt = SUBFLOWS.FILTER(sbf => sbf.RTT > minRttSbf.RTT).MIN(sbf => sbf.RTT);
				alt.PUSH(QU.TOP);
			}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			mustCheckOK(t, src)
		})
	}
}

func TestCheckRejects(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"pop in condition", "IF (Q.POP().SIZE > 0) { RETURN; }", "side effects"},
		{"pop in predicate", "VAR s = SUBFLOWS.FILTER(sbf => Q.POP() != NULL);", "side effects"},
		{"pop in set", "SET(R1, Q.POP().SIZE);", "side effects"},
		{"pop chained in var", "VAR x = Q.POP().SIZE;", "side effects"},
		{"pop in foreach iter", "FOREACH (VAR s IN SUBFLOWS.FILTER(x => Q.POP() == NULL)) { RETURN; }", "side effects"},
		{"redeclared var", "VAR x = 1; VAR x = 2;", "redeclared"},
		{"shadowing in block", "VAR x = 1; IF (TRUE) { VAR x = 2; }", "redeclared"},
		{"lambda shadowing", "VAR sbf = SUBFLOWS.GET(0); VAR y = SUBFLOWS.FILTER(sbf => TRUE).COUNT;", "redeclared"},
		{"undeclared ident", "VAR x = y + 1;", "undeclared identifier y"},
		{"if cond not bool", "IF (1 + 2) { RETURN; }", "must be bool"},
		{"arith on bool", "VAR x = TRUE + 1;", "arithmetic requires int"},
		{"and on int", "VAR x = 1 AND TRUE;", "requires bool operands"},
		{"not on int", "VAR x = !3;", "requires bool"},
		{"compare packet with int", "VAR x = Q.TOP == 3;", "mismatched types"},
		{"null vs int", "VAR x = 3 == NULL;", "only packets and subflows"},
		{"null vs null", "VAR x = NULL == NULL;", "cannot compare NULL with NULL"},
		{"bare null", "VAR x = NULL;", "NULL may only appear"},
		{"foreach over queue", "FOREACH (VAR p IN Q) { RETURN; }", "FOREACH iterates subflow lists"},
		{"push as expression", "VAR x = SUBFLOWS.GET(0).PUSH(Q.TOP);", "statement, not an expression"},
		{"filter body not bool", "VAR s = SUBFLOWS.FILTER(sbf => sbf.RTT);", "predicate must be bool"},
		{"min body not int", "VAR s = SUBFLOWS.MIN(sbf => sbf.LOSSY);", "key must be int"},
		{"filter without lambda", "VAR s = SUBFLOWS.FILTER(1 + 2);", "must be a lambda"},
		{"unknown sbf property", "VAR x = SUBFLOWS.GET(0).BANDWIDTH;", "no property BANDWIDTH"},
		{"unknown pkt property", "VAR x = Q.TOP.PRIORITY;", "no property PRIORITY"},
		{"unknown queue member", "VAR x = Q.GET(0);", "no member GET"},
		{"get on queue", "VAR x = Q.GET(1);", "no member GET"},
		{"top with parens", "VAR x = Q.TOP();", "property, not a call"},
		{"empty with parens", "IF (Q.EMPTY()) { RETURN; }", "property, not a call"},
		{"pop without parens as var", "VAR x = Q.POP;", "POP takes no arguments"},
		{"has_window_for wrong arg", "VAR x = SUBFLOWS.GET(0).HAS_WINDOW_FOR(3);", "must be a packet"},
		{"sent_on wrong arg", "VAR x = Q.TOP.SENT_ON(5);", "must be a subflow"},
		{"get index not int", "VAR x = SUBFLOWS.GET(TRUE);", "index must be int"},
		{"set not int", "SET(R1, TRUE);", "must be int"},
		{"push target not subflow", "Q.TOP.PUSH(Q.TOP);", "PUSH target must be a subflow"},
		{"drop non packet", "DROP(5);", "must be a packet"},
		{"lists not comparable", "VAR x = SUBFLOWS == SUBFLOWS;", "not comparable"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := check(t, tc.src)
			if err == nil {
				t.Fatalf("Check(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCheckInferredTypes(t *testing.T) {
	src := `VAR n = 1 + 2;
VAR flag = Q.EMPTY;
VAR skb = Q.TOP;
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
VAR lst = SUBFLOWS.FILTER(s => !s.LOSSY);`
	info := mustCheckOK(t, src)
	wantTypes := map[string]Type{
		"n": Int, "flag": Bool, "skb": Packet, "sbf": Subflow, "lst": SubflowList,
	}
	for node, sym := range info.Defs {
		if _, ok := node.(*lang.VarDecl); !ok {
			continue
		}
		want, ok := wantTypes[sym.Name]
		if !ok {
			continue
		}
		if sym.Type != want {
			t.Errorf("VAR %s has type %s, want %s", sym.Name, sym.Type, want)
		}
	}
}

func TestCheckFilterOnFilteredQueue(t *testing.T) {
	src := `VAR skb = QU.FILTER(p => p.SIZE > 100).FILTER(p2 => p2.SENT_COUNT == 1).TOP;
IF (skb != NULL) { SUBFLOWS.GET(0).PUSH(skb); }`
	mustCheckOK(t, src)
}

func TestCheckRegisterTracking(t *testing.T) {
	info := mustCheckOK(t, `SET(R2, R1 + R3);`)
	if !info.RegsRead[0] || !info.RegsRead[2] {
		t.Errorf("RegsRead = %v, want R1 and R3 read", info.RegsRead)
	}
	if !info.RegsWritten[1] {
		t.Errorf("RegsWritten = %v, want R2 written", info.RegsWritten)
	}
	if info.RegsRead[1] {
		t.Errorf("R2 should not be marked read")
	}
}

func TestCheckSlotAssignment(t *testing.T) {
	info := mustCheckOK(t, `VAR a = 1; VAR b = 2; FOREACH (VAR s IN SUBFLOWS) { VAR c = s.RTT; }`)
	if info.NumSlots != 4 {
		t.Errorf("NumSlots = %d, want 4 (a, b, s, c)", info.NumSlots)
	}
	seen := map[int]string{}
	for _, sym := range info.Defs {
		if prev, dup := seen[sym.Slot]; dup {
			t.Errorf("slot %d assigned to both %s and %s", sym.Slot, prev, sym.Name)
		}
		seen[sym.Slot] = sym.Name
	}
}

func TestCheckScopesAllowSiblingBranches(t *testing.T) {
	// The same name in disjoint sibling scopes is still a redeclaration
	// under the paper's single-assignment form? No — disjoint scopes are
	// fine; only visibility overlap is prohibited.
	src := `IF (TRUE) { VAR x = 1; } ELSE { VAR x = 2; }`
	mustCheckOK(t, src)
}

func TestMustCheckPanicsOnBadProgram(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCheck should panic")
		}
	}()
	MustCheck("VAR x = y;")
}
