// Package types implements the static type system of the ProgMP
// scheduler language (Table 1 of the paper): implicit typing from the
// initial assignment, single-assignment variables, a fixed set of types
// (int, bool, packet, subflow, subflow list, packet queue), and the
// restriction of side effects to PUSH/POP/DROP/SET statement positions.
package types

import (
	"fmt"

	"progmp/internal/lang"
	"progmp/internal/runtime"
)

// Type is a language-level type.
type Type int

// The language types.
const (
	Invalid Type = iota
	Int
	Bool
	Packet
	Subflow
	SubflowList
	PacketQueue
)

var typeNames = [...]string{
	Invalid:     "invalid",
	Int:         "int",
	Bool:        "bool",
	Packet:      "packet",
	Subflow:     "subflow",
	SubflowList: "subflowList",
	PacketQueue: "packetQueue",
}

// String returns the type's name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Symbol describes a declared name: a VAR, a FOREACH loop variable, or
// a lambda parameter. Each symbol owns a distinct frame slot.
type Symbol struct {
	Name    string
	Type    Type
	Slot    int
	DeclPos lang.Pos
}

// MemberKind classifies a resolved member access or call.
type MemberKind int

// Resolved member kinds.
const (
	MemberInvalid      MemberKind = iota
	MemberSbfInt                  // subflow integer property
	MemberSbfBool                 // subflow boolean property
	MemberHasWindowFor            // sbf.HAS_WINDOW_FOR(pkt) -> bool
	MemberPktInt                  // packet integer property
	MemberSentOn                  // pkt.SENT_ON(sbf) -> bool
	MemberFilter                  // list.FILTER(x => bool) -> list
	MemberMin                     // list.MIN(x => int) -> element
	MemberMax                     // list.MAX(x => int) -> element
	MemberTop                     // queue.TOP -> packet (alias FIRST)
	MemberPop                     // queue.POP() -> packet (effectful)
	MemberEmpty                   // list/queue.EMPTY -> bool
	MemberCount                   // list/queue.COUNT -> int
	MemberGet                     // subflowList.GET(int) -> subflow
	MemberBytes                   // queue.BYTES -> int (sum of visible packet sizes)
)

// Member is the checker's resolution of one MemberExpr, consumed by all
// back-ends so name resolution happens exactly once.
type Member struct {
	Kind    MemberKind
	SbfInt  runtime.SubflowIntProp
	SbfBool runtime.SubflowBoolProp
	PktInt  runtime.PacketIntProp
	// RecvType is the receiver's type; for MemberFilter/Min/Max it
	// determines the element type of the lambda parameter.
	RecvType Type
	Result   Type
}

// ElemType returns the element type of a collection type.
func ElemType(t Type) Type {
	switch t {
	case SubflowList:
		return Subflow
	case PacketQueue:
		return Packet
	}
	return Invalid
}

// Info is the result of checking a program: expression types, symbol
// definitions and uses, resolved members, and frame layout.
type Info struct {
	Prog      *lang.Program
	ExprTypes map[lang.Expr]Type
	// Defs maps declaring nodes (*lang.VarDecl, *lang.ForeachStmt,
	// *lang.Lambda) to their symbol.
	Defs map[lang.Node]*Symbol
	// Uses maps identifier references to their symbol.
	Uses map[*lang.Ident]*Symbol
	// Members maps member expressions to their resolution.
	Members map[*lang.MemberExpr]*Member
	// NumSlots is the number of frame slots needed for variables.
	NumSlots int
	// RegsRead/RegsWritten record which ProgMP registers the program
	// touches, for introspection and the API layer.
	RegsRead    [runtime.NumRegisters]bool
	RegsWritten [runtime.NumRegisters]bool
	// GlobalsRead/GlobalsWritten record which shared global registers
	// the program touches (G1..G8 reads, GSET writes).
	GlobalsRead    [runtime.NumGlobals]bool
	GlobalsWritten [runtime.NumGlobals]bool
}

// TypeOf returns the checked type of e (Invalid if unknown).
//
//progmp:hotpath
//progmp:deterministic
func (info *Info) TypeOf(e lang.Expr) Type { return info.ExprTypes[e] }

// CheckError aggregates type errors with positions.
type CheckError struct {
	Errs []error
}

// Error joins the messages, one per line.
func (e *CheckError) Error() string {
	s := ""
	for i, err := range e.Errs {
		if i > 0 {
			s += "\n"
		}
		s += err.Error()
	}
	return s
}

type checker struct {
	info   *Info
	errs   []error
	scopes []map[string]*Symbol
	nSlots int
}

// Check type-checks prog and returns the analysis results.
func Check(prog *lang.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:      prog,
			ExprTypes: make(map[lang.Expr]Type),
			Defs:      make(map[lang.Node]*Symbol),
			Uses:      make(map[*lang.Ident]*Symbol),
			Members:   make(map[*lang.MemberExpr]*Member),
		},
	}
	c.pushScope()
	for _, s := range prog.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
	c.info.NumSlots = c.nSlots
	if len(c.errs) > 0 {
		return nil, &CheckError{Errs: c.errs}
	}
	return c.info, nil
}

// MustCheck parses and checks src, panicking on error. Intended for
// compile-time-constant scheduler specifications and tests.
func MustCheck(src string) *Info {
	prog := lang.MustParse(src)
	info, err := Check(prog)
	if err != nil {
		panic(fmt.Sprintf("types.MustCheck: %v", err))
	}
	return info
}

func (c *checker) errorf(pos lang.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) pushScope() {
	c.scopes = append(c.scopes, make(map[string]*Symbol))
}

func (c *checker) popScope() {
	c.scopes = c.scopes[:len(c.scopes)-1]
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if sym, ok := c.scopes[i][name]; ok {
			return sym
		}
	}
	return nil
}

// declare introduces a new symbol, enforcing the single-assignment form:
// a name may be declared at most once in any enclosing scope (no
// shadowing, no redeclaration).
func (c *checker) declare(node lang.Node, name string, t Type, pos lang.Pos) *Symbol {
	if prev := c.lookup(name); prev != nil {
		c.errorf(pos, "%s redeclared (single-assignment form; previously declared at %s)", name, prev.DeclPos)
	}
	sym := &Symbol{Name: name, Type: t, Slot: c.nSlots, DeclPos: pos}
	c.nSlots++
	c.scopes[len(c.scopes)-1][name] = sym
	c.info.Defs[node] = sym
	return sym
}

// ---- Statements ----

func (c *checker) checkStmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		c.pushScope()
		for _, inner := range s.Stmts {
			c.checkStmt(inner)
		}
		c.popScope()
	case *lang.IfStmt:
		t := c.checkExpr(s.Cond, false)
		if t != Bool && t != Invalid {
			c.errorf(s.Cond.Position(), "IF condition must be bool, got %s", t)
		}
		c.pushScope()
		for _, inner := range s.Then.Stmts {
			c.checkStmt(inner)
		}
		c.popScope()
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *lang.VarDecl:
		t := c.checkExpr(s.Init, true)
		if t == Invalid {
			t = Int // limit error cascades
		}
		c.declare(s, s.Name, t, s.VarPos)
	case *lang.ForeachStmt:
		t := c.checkExpr(s.Iter, false)
		if t != SubflowList && t != Invalid {
			c.errorf(s.Iter.Position(), "FOREACH iterates subflow lists, got %s", t)
		}
		c.pushScope()
		c.declare(s, s.Name, Subflow, s.ForPos)
		for _, inner := range s.Body.Stmts {
			c.checkStmt(inner)
		}
		c.popScope()
	case *lang.SetStmt:
		if s.Reg < 0 || s.Reg >= runtime.NumRegisters {
			c.errorf(s.SetPos, "register index out of range")
		} else {
			c.info.RegsWritten[s.Reg] = true
		}
		t := c.checkExpr(s.Value, false)
		if t != Int && t != Invalid {
			c.errorf(s.Value.Position(), "SET value must be int, got %s", t)
		}
	case *lang.GSetStmt:
		if s.Reg < 0 || s.Reg >= runtime.NumGlobals {
			c.errorf(s.SetPos, "global register index out of range")
		} else {
			c.info.GlobalsWritten[s.Reg] = true
		}
		t := c.checkExpr(s.Value, false)
		if t != Int && t != Invalid {
			c.errorf(s.Value.Position(), "GSET value must be int, got %s", t)
		}
	case *lang.PushStmt:
		tt := c.checkExpr(s.Target, false)
		if tt != Subflow && tt != Invalid {
			c.errorf(s.Target.Position(), "PUSH target must be a subflow, got %s", tt)
		}
		ta := c.checkExpr(s.Arg, true)
		if ta != Packet && ta != Invalid {
			c.errorf(s.Arg.Position(), "PUSH argument must be a packet, got %s", ta)
		}
	case *lang.DropStmt:
		t := c.checkExpr(s.Arg, true)
		if t != Packet && t != Invalid {
			c.errorf(s.Arg.Position(), "DROP argument must be a packet, got %s", t)
		}
	case *lang.ReturnStmt:
		// No operands.
	}
}

// ---- Expressions ----

// checkExpr types e. effectRoot is true only when e is the entire
// expression in a side-effect-permitted position (VAR initializer, PUSH
// argument, DROP argument); POP is legal only there, which statically
// rules out accidental packet removal inside predicates (§3.3).
func (c *checker) checkExpr(e lang.Expr, effectRoot bool) Type {
	t := c.typeExpr(e, effectRoot)
	c.info.ExprTypes[e] = t
	return t
}

func (c *checker) typeExpr(e lang.Expr, effectRoot bool) Type {
	switch e := e.(type) {
	case *lang.NumberLit:
		return Int
	case *lang.BoolLit:
		return Bool
	case *lang.NullLit:
		// Bare NULL outside an equality comparison has no type; the
		// comparison case is handled in BinaryExpr below.
		c.errorf(e.Pos, "NULL may only appear in == or != comparisons with packets or subflows")
		return Invalid
	case *lang.RegExpr:
		if e.Index >= 0 && e.Index < runtime.NumRegisters {
			c.info.RegsRead[e.Index] = true
		}
		return Int
	case *lang.GlobalExpr:
		if e.Index >= 0 && e.Index < runtime.NumGlobals {
			c.info.GlobalsRead[e.Index] = true
		}
		return Int
	case *lang.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos, "undeclared identifier %s", e.Name)
			return Invalid
		}
		c.info.Uses[e] = sym
		return sym.Type
	case *lang.EntityExpr:
		if e.Kind == lang.EntitySubflows {
			return SubflowList
		}
		return PacketQueue
	case *lang.UnaryExpr:
		t := c.checkExpr(e.X, false)
		switch e.Op {
		case lang.NOT:
			if t != Bool && t != Invalid {
				c.errorf(e.OpPos, "operator ! requires bool, got %s", t)
			}
			return Bool
		case lang.MINUS:
			if t != Int && t != Invalid {
				c.errorf(e.OpPos, "unary - requires int, got %s", t)
			}
			return Int
		}
		return Invalid
	case *lang.BinaryExpr:
		return c.typeBinary(e)
	case *lang.Lambda:
		c.errorf(e.ParamPos, "lambda is only valid as the argument of FILTER, MIN or MAX")
		return Invalid
	case *lang.MemberExpr:
		return c.typeMember(e, effectRoot)
	}
	return Invalid
}

func (c *checker) typeBinary(e *lang.BinaryExpr) Type {
	// Equality with NULL gets special handling: NULL adopts the type of
	// the other operand, which must be a reference type.
	if e.Op == lang.EQ || e.Op == lang.NEQ {
		_, xNull := e.X.(*lang.NullLit)
		_, yNull := e.Y.(*lang.NullLit)
		if xNull && yNull {
			c.errorf(e.X.Position(), "cannot compare NULL with NULL")
			return Bool
		}
		if xNull || yNull {
			other := e.X
			nullSide := e.Y
			if xNull {
				other, nullSide = e.Y, e.X
			}
			t := c.checkExpr(other, false)
			if t != Packet && t != Subflow && t != Invalid {
				c.errorf(other.Position(), "only packets and subflows compare against NULL, got %s", t)
			}
			c.info.ExprTypes[nullSide] = t
			return Bool
		}
	}
	tx := c.checkExpr(e.X, false)
	ty := c.checkExpr(e.Y, false)
	switch e.Op {
	case lang.PLUS, lang.MINUS, lang.STAR, lang.SLASH, lang.PERCENT:
		if (tx != Int && tx != Invalid) || (ty != Int && ty != Invalid) {
			c.errorf(e.X.Position(), "arithmetic requires int operands, got %s and %s", tx, ty)
		}
		return Int
	case lang.LT, lang.LTE, lang.GT, lang.GTE:
		if (tx != Int && tx != Invalid) || (ty != Int && ty != Invalid) {
			c.errorf(e.X.Position(), "comparison requires int operands, got %s and %s", tx, ty)
		}
		return Bool
	case lang.EQ, lang.NEQ:
		if tx != ty && tx != Invalid && ty != Invalid {
			c.errorf(e.X.Position(), "mismatched types in equality: %s and %s", tx, ty)
		} else if tx == SubflowList || tx == PacketQueue {
			c.errorf(e.X.Position(), "%s values are not comparable", tx)
		}
		return Bool
	case lang.AND, lang.OR:
		if (tx != Bool && tx != Invalid) || (ty != Bool && ty != Invalid) {
			c.errorf(e.X.Position(), "%s requires bool operands, got %s and %s", e.Op, tx, ty)
		}
		return Bool
	}
	return Invalid
}

func (c *checker) typeMember(e *lang.MemberExpr, effectRoot bool) Type {
	recvT := c.checkExpr(e.Recv, false)
	m := &Member{RecvType: recvT}
	c.info.Members[e] = m
	fail := func(format string, args ...any) Type {
		c.errorf(e.NamePos, format, args...)
		m.Kind = MemberInvalid
		m.Result = Invalid
		return Invalid
	}
	if recvT == Invalid {
		return Invalid
	}

	// Collection operations shared by subflow lists and packet queues.
	if recvT == SubflowList || recvT == PacketQueue {
		switch e.Name {
		case "FILTER", "MIN", "MAX":
			if !e.HasParens || len(e.Args) != 1 {
				return fail("%s takes exactly one lambda argument", e.Name)
			}
			lam, ok := e.Args[0].(*lang.Lambda)
			if !ok {
				return fail("%s argument must be a lambda (x => ...)", e.Name)
			}
			elem := ElemType(recvT)
			c.pushScope()
			c.declare(lam, lam.Param, elem, lam.ParamPos)
			bodyT := c.checkExpr(lam.Body, false)
			c.popScope()
			c.info.ExprTypes[lam] = Invalid // lambdas have no value type
			switch e.Name {
			case "FILTER":
				if bodyT != Bool && bodyT != Invalid {
					return fail("FILTER predicate must be bool, got %s", bodyT)
				}
				m.Kind = MemberFilter
				m.Result = recvT
			case "MIN", "MAX":
				if bodyT != Int && bodyT != Invalid {
					return fail("%s key must be int, got %s", e.Name, bodyT)
				}
				if e.Name == "MIN" {
					m.Kind = MemberMin
				} else {
					m.Kind = MemberMax
				}
				m.Result = elem
			}
			return m.Result
		case "EMPTY":
			if e.HasParens {
				return fail("EMPTY is a property, not a call")
			}
			m.Kind = MemberEmpty
			m.Result = Bool
			return Bool
		case "COUNT":
			if e.HasParens {
				return fail("COUNT is a property, not a call")
			}
			m.Kind = MemberCount
			m.Result = Int
			return Int
		}
	}

	switch recvT {
	case SubflowList:
		if e.Name == "GET" {
			if !e.HasParens || len(e.Args) != 1 {
				return fail("GET takes exactly one int argument")
			}
			if t := c.checkExpr(e.Args[0], false); t != Int && t != Invalid {
				return fail("GET index must be int, got %s", t)
			}
			m.Kind = MemberGet
			m.Result = Subflow
			return Subflow
		}
		return fail("subflow lists have no member %s", e.Name)
	case PacketQueue:
		switch e.Name {
		case "TOP", "FIRST":
			if e.HasParens {
				return fail("%s is a property, not a call", e.Name)
			}
			m.Kind = MemberTop
			m.Result = Packet
			return Packet
		case "BYTES":
			if e.HasParens {
				return fail("BYTES is a property, not a call")
			}
			m.Kind = MemberBytes
			m.Result = Int
			return Int
		case "POP":
			if !e.HasParens || len(e.Args) != 0 {
				return fail("POP takes no arguments")
			}
			if !effectRoot {
				return fail("POP has side effects and is only allowed as a whole VAR initializer, PUSH argument, or DROP argument")
			}
			m.Kind = MemberPop
			m.Result = Packet
			return Packet
		}
		return fail("packet queues have no member %s", e.Name)
	case Subflow:
		if e.Name == "PUSH" {
			return fail("PUSH is a statement, not an expression")
		}
		if e.Name == "HAS_WINDOW_FOR" {
			if !e.HasParens || len(e.Args) != 1 {
				return fail("HAS_WINDOW_FOR takes exactly one packet argument")
			}
			if t := c.checkExpr(e.Args[0], false); t != Packet && t != Invalid {
				return fail("HAS_WINDOW_FOR argument must be a packet, got %s", t)
			}
			m.Kind = MemberHasWindowFor
			m.Result = Bool
			return Bool
		}
		if e.HasParens {
			return fail("subflows have no method %s", e.Name)
		}
		for p := runtime.SubflowIntProp(0); int(p) < runtime.NumSubflowIntProps; p++ {
			if p.String() == e.Name {
				m.Kind = MemberSbfInt
				m.SbfInt = p
				m.Result = Int
				return Int
			}
		}
		for p := runtime.SubflowBoolProp(0); int(p) < runtime.NumSubflowBoolProps; p++ {
			if p.String() == e.Name {
				m.Kind = MemberSbfBool
				m.SbfBool = p
				m.Result = Bool
				return Bool
			}
		}
		return fail("subflows have no property %s", e.Name)
	case Packet:
		if e.Name == "SENT_ON" {
			if !e.HasParens || len(e.Args) != 1 {
				return fail("SENT_ON takes exactly one subflow argument")
			}
			if t := c.checkExpr(e.Args[0], false); t != Subflow && t != Invalid {
				return fail("SENT_ON argument must be a subflow, got %s", t)
			}
			m.Kind = MemberSentOn
			m.Result = Bool
			return Bool
		}
		if e.HasParens {
			return fail("packets have no method %s", e.Name)
		}
		for p := runtime.PacketIntProp(0); int(p) < runtime.NumPacketIntProps; p++ {
			if p.String() == e.Name {
				m.Kind = MemberPktInt
				m.PktInt = p
				m.Result = Int
				return Int
			}
		}
		return fail("packets have no property %s", e.Name)
	}
	return fail("type %s has no member %s", recvT, e.Name)
}
