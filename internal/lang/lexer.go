package lang

import (
	"fmt"
	"strings"
)

// Lexer turns ProgMP scheduler source text into a token stream.
// Comments use the C style: // to end of line and /* ... */.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errs returns lexical errors accumulated so far.
func (l *Lexer) Errs() []error { return l.errs }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// isRegisterName reports whether lit spells a register R1..R8.
func isRegisterName(lit string) bool {
	if len(lit) != 2 || lit[0] != 'R' {
		return false
	}
	return lit[1] >= '1' && lit[1] <= '8'
}

// isGlobalRegisterName reports whether lit spells a shared global
// register G1..G8.
func isGlobalRegisterName(lit string) bool {
	if len(lit) != 2 || lit[0] != 'G' {
		return false
	}
	return lit[1] >= '1' && lit[1] <= '8'
}

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if isRegisterName(lit) {
			return Token{Kind: REG, Lit: lit, Pos: p}
		}
		if isGlobalRegisterName(lit) {
			return Token{Kind: GREG, Lit: lit, Pos: p}
		}
		if k, ok := keywords[lit]; ok {
			if k == NOT {
				return Token{Kind: NOT, Lit: lit, Pos: p}
			}
			return Token{Kind: k, Lit: lit, Pos: p}
		}
		return Token{Kind: IDENT, Lit: lit, Pos: p}
	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: NUMBER, Lit: l.src[start:l.off], Pos: p}
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: p}
	case ')':
		return Token{Kind: RPAREN, Pos: p}
	case '{':
		return Token{Kind: LBRACE, Pos: p}
	case '}':
		return Token{Kind: RBRACE, Pos: p}
	case ',':
		return Token{Kind: COMMA, Pos: p}
	case ';':
		return Token{Kind: SEMICOLON, Pos: p}
	case '.':
		return Token{Kind: DOT, Pos: p}
	case '+':
		return Token{Kind: PLUS, Pos: p}
	case '-':
		return Token{Kind: MINUS, Pos: p}
	case '*':
		return Token{Kind: STAR, Pos: p}
	case '/':
		return Token{Kind: SLASH, Pos: p}
	case '%':
		return Token{Kind: PERCENT, Pos: p}
	case '=':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: EQ, Pos: p}
		}
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: ARROW, Pos: p}
		}
		return Token{Kind: ASSIGN, Pos: p}
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: NEQ, Pos: p}
		}
		return Token{Kind: NOT, Pos: p}
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: LTE, Pos: p}
		}
		return Token{Kind: LT, Pos: p}
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: GTE, Pos: p}
		}
		return Token{Kind: GT, Pos: p}
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: AND, Pos: p}
		}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OR, Pos: p}
		}
	}
	l.errorf(p, "illegal character %q", string(c))
	return Token{Kind: ILLEGAL, Lit: string(c), Pos: p}
}

// Tokenize scans the entire input and returns all tokens up to and
// including EOF, along with any lexical errors.
func Tokenize(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, l.Errs()
}

// FormatTokens renders a token stream on one line, for debugging.
func FormatTokens(toks []Token) string {
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}
