package lang

import (
	"fmt"
	"strings"
)

// Node is implemented by all AST nodes.
type Node interface {
	Position() Pos
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Program is the root node: a sequence of statements executed per
// scheduler invocation.
type Program struct {
	Stmts []Stmt
	// Source is the original specification text, retained for
	// diagnostics and size accounting.
	Source string
}

// Position returns the position of the first statement (or 1:1).
func (p *Program) Position() Pos {
	if len(p.Stmts) > 0 {
		return p.Stmts[0].Position()
	}
	return Pos{Line: 1, Col: 1}
}

// ---- Statements ----

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Lbrace Pos
	Stmts  []Stmt
}

// IfStmt is IF (Cond) { Then } ELSE { Else } with optional else.
type IfStmt struct {
	IfPos Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // *BlockStmt, *IfStmt, or nil
}

// VarDecl is VAR name = init; — single assignment, implicit typing.
type VarDecl struct {
	VarPos Pos
	Name   string
	Init   Expr
}

// ForeachStmt is FOREACH (VAR name IN iter) { body }.
type ForeachStmt struct {
	ForPos Pos
	Name   string
	Iter   Expr
	Body   *BlockStmt
}

// SetStmt is SET(Rn, value); — the only mutation of register state.
type SetStmt struct {
	SetPos Pos
	Reg    int // 0-based register index
	Value  Expr
}

// GSetStmt is GSET(Gn, value); — writes a global register shared with
// every connection attached to the same cross-connection state store.
type GSetStmt struct {
	SetPos Pos
	Reg    int // 0-based global register index
	Value  Expr
}

// PushStmt is target.PUSH(arg); — the only packet-moving side effect.
type PushStmt struct {
	Target Expr // subflow-typed
	Arg    Expr // packet-typed
	PushAt Pos
}

// DropStmt is DROP(arg); — discards a packet popped from a queue.
type DropStmt struct {
	DropPos Pos
	Arg     Expr
}

// ReturnStmt terminates the current scheduler execution.
type ReturnStmt struct {
	RetPos Pos
}

func (s *BlockStmt) Position() Pos   { return s.Lbrace }
func (s *IfStmt) Position() Pos      { return s.IfPos }
func (s *VarDecl) Position() Pos     { return s.VarPos }
func (s *ForeachStmt) Position() Pos { return s.ForPos }
func (s *SetStmt) Position() Pos     { return s.SetPos }
func (s *GSetStmt) Position() Pos    { return s.SetPos }
func (s *PushStmt) Position() Pos    { return s.PushAt }
func (s *DropStmt) Position() Pos    { return s.DropPos }
func (s *ReturnStmt) Position() Pos  { return s.RetPos }

func (*BlockStmt) stmtNode()   {}
func (*IfStmt) stmtNode()      {}
func (*VarDecl) stmtNode()     {}
func (*ForeachStmt) stmtNode() {}
func (*SetStmt) stmtNode()     {}
func (*GSetStmt) stmtNode()    {}
func (*PushStmt) stmtNode()    {}
func (*DropStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()  {}

// ---- Expressions ----

// NumberLit is an integer literal.
type NumberLit struct {
	Pos Pos
	Val int64
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Pos Pos
	Val bool
}

// NullLit is NULL, inhabiting packet and subflow types.
type NullLit struct {
	Pos Pos
}

// RegExpr reads register Rn (0-based Index).
type RegExpr struct {
	Pos   Pos
	Index int
}

// GlobalExpr reads shared global register Gn (0-based Index).
type GlobalExpr struct {
	Pos   Pos
	Index int
}

// Ident references a VAR or lambda parameter.
type Ident struct {
	Pos  Pos
	Name string
}

// EntityKind identifies the built-in scheduler environment entities.
type EntityKind int

// Built-in entities of the scheduling environment model.
const (
	EntityQ EntityKind = iota
	EntityQU
	EntityRQ
	EntitySubflows
)

// String names the entity as spelled in source.
func (k EntityKind) String() string {
	switch k {
	case EntityQ:
		return "Q"
	case EntityQU:
		return "QU"
	case EntityRQ:
		return "RQ"
	case EntitySubflows:
		return "SUBFLOWS"
	}
	return fmt.Sprintf("EntityKind(%d)", int(k))
}

// EntityExpr references Q, QU, RQ or SUBFLOWS.
type EntityExpr struct {
	Pos  Pos
	Kind EntityKind
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	OpPos Pos
	Op    Kind // NOT or MINUS
	X     Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind // PLUS..GTE, AND, OR
	X, Y Expr
}

// Lambda is a one-parameter anonymous predicate: param => body.
type Lambda struct {
	ParamPos Pos
	Param    string
	Body     Expr
}

// MemberExpr is a property access or method call: recv.Name or
// recv.Name(args). FILTER/MIN/MAX take a single Lambda argument.
type MemberExpr struct {
	Recv    Expr
	Name    string
	NamePos Pos
	Args    []Expr
	// HasParens distinguishes `.POP()` from `.TOP`.
	HasParens bool
}

func (e *NumberLit) Position() Pos  { return e.Pos }
func (e *BoolLit) Position() Pos    { return e.Pos }
func (e *NullLit) Position() Pos    { return e.Pos }
func (e *RegExpr) Position() Pos    { return e.Pos }
func (e *GlobalExpr) Position() Pos { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *EntityExpr) Position() Pos { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.OpPos }
func (e *BinaryExpr) Position() Pos { return e.X.Position() }
func (e *Lambda) Position() Pos     { return e.ParamPos }

//progmp:hotpath
//progmp:deterministic
func (e *MemberExpr) Position() Pos { return e.NamePos }

func (*NumberLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*RegExpr) exprNode()    {}
func (*GlobalExpr) exprNode() {}
func (*Ident) exprNode()      {}
func (*EntityExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*Lambda) exprNode()     {}
func (*MemberExpr) exprNode() {}

// ---- Printing ----

// Format renders the program as canonical source text. The output
// re-parses to an equivalent AST, which the tests rely on.
func (p *Program) Format() string {
	var b strings.Builder
	for _, s := range p.Stmts {
		formatStmt(&b, s, 0)
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *BlockStmt:
		indent(b, depth)
		b.WriteString("{\n")
		for _, inner := range s.Stmts {
			formatStmt(b, inner, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *IfStmt:
		indent(b, depth)
		b.WriteString("IF (")
		b.WriteString(FormatExpr(s.Cond))
		b.WriteString(") {\n")
		for _, inner := range s.Then.Stmts {
			formatStmt(b, inner, depth+1)
		}
		indent(b, depth)
		b.WriteString("}")
		switch e := s.Else.(type) {
		case nil:
			b.WriteString("\n")
		case *BlockStmt:
			b.WriteString(" ELSE {\n")
			for _, inner := range e.Stmts {
				formatStmt(b, inner, depth+1)
			}
			indent(b, depth)
			b.WriteString("}\n")
		case *IfStmt:
			b.WriteString(" ELSE ")
			var sub strings.Builder
			formatStmt(&sub, e, depth)
			b.WriteString(strings.TrimLeft(sub.String(), " "))
		}
	case *VarDecl:
		indent(b, depth)
		fmt.Fprintf(b, "VAR %s = %s;\n", s.Name, FormatExpr(s.Init))
	case *ForeachStmt:
		indent(b, depth)
		fmt.Fprintf(b, "FOREACH (VAR %s IN %s) {\n", s.Name, FormatExpr(s.Iter))
		for _, inner := range s.Body.Stmts {
			formatStmt(b, inner, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *SetStmt:
		indent(b, depth)
		fmt.Fprintf(b, "SET(R%d, %s);\n", s.Reg+1, FormatExpr(s.Value))
	case *GSetStmt:
		indent(b, depth)
		fmt.Fprintf(b, "GSET(G%d, %s);\n", s.Reg+1, FormatExpr(s.Value))
	case *PushStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s.PUSH(%s);\n", FormatExpr(s.Target), FormatExpr(s.Arg))
	case *DropStmt:
		indent(b, depth)
		fmt.Fprintf(b, "DROP(%s);\n", FormatExpr(s.Arg))
	case *ReturnStmt:
		indent(b, depth)
		b.WriteString("RETURN;\n")
	}
}

// FormatExpr renders an expression as source text (fully parenthesized
// for binary operations, so precedence never needs reconstructing).
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%d", e.Val)
	case *BoolLit:
		if e.Val {
			return "TRUE"
		}
		return "FALSE"
	case *NullLit:
		return "NULL"
	case *RegExpr:
		return fmt.Sprintf("R%d", e.Index+1)
	case *GlobalExpr:
		return fmt.Sprintf("G%d", e.Index+1)
	case *Ident:
		return e.Name
	case *EntityExpr:
		return e.Kind.String()
	case *UnaryExpr:
		if e.Op == NOT {
			return "!" + FormatExpr(e.X)
		}
		return "-" + FormatExpr(e.X)
	case *BinaryExpr:
		return "(" + FormatExpr(e.X) + " " + e.Op.String() + " " + FormatExpr(e.Y) + ")"
	case *Lambda:
		return e.Param + " => " + FormatExpr(e.Body)
	case *MemberExpr:
		recv := FormatExpr(e.Recv)
		if !e.HasParens {
			return recv + "." + e.Name
		}
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return recv + "." + e.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("<unknown expr %T>", e)
}
