package schedlib

import (
	"strings"
	"testing"

	"progmp/internal/core"
	"progmp/internal/envtest"
	"progmp/internal/runtime"
)

// TestCorpusLoadsOnAllBackends compiles every scheduler of the corpus
// with all three execution back-ends.
func TestCorpusLoadsOnAllBackends(t *testing.T) {
	for name, src := range All {
		for _, backend := range []core.Backend{core.BackendInterpreter, core.BackendCompiled, core.BackendVM} {
			if _, err := core.Load(name, src, backend); err != nil {
				t.Errorf("%s on %s: %v", name, backend, err)
			}
		}
	}
}

// TestCorpusBackendAgreement checks that every scheduler behaves
// identically across back-ends on a set of canonical environments.
func TestCorpusBackendAgreement(t *testing.T) {
	builds := []func() *runtime.Env{
		func() *runtime.Env { return envtest.TwoSubflowEnv(0) },
		func() *runtime.Env { return envtest.TwoSubflowEnv(3) },
		func() *runtime.Env {
			return envtest.EnvSpec{
				Subflows: []envtest.SbfSpec{
					{ID: 0, RTT: 10000, Cwnd: 4, InFlight: 4}, // exhausted
					{ID: 1, RTT: 40000, Cwnd: 8, InFlight: 2, Backup: true},
				},
				Q:  []envtest.PktSpec{{Seq: 10}, {Seq: 11}},
				QU: []envtest.PktSpec{{Seq: 8, SentOn: []int{0}}, {Seq: 9, SentOn: []int{1}}},
			}.Build()
		},
		func() *runtime.Env {
			return envtest.EnvSpec{
				Subflows: []envtest.SbfSpec{
					{ID: 0, RTT: 12000, Cwnd: 10, InFlight: 1},
					{ID: 1, RTT: 45000, Cwnd: 10, InFlight: 0, Backup: true},
					{ID: 2, RTT: 25000, Cwnd: 10, InFlight: 3, Lossy: true},
				},
				Q:  []envtest.PktSpec{{Seq: 0, Prop: 1}, {Seq: 1, Prop: 3}, {Seq: 2, Prop: 2}},
				QU: []envtest.PktSpec{{Seq: 100, SentOn: []int{0, 1}}},
				RQ: []envtest.PktSpec{{Seq: 50, SentOn: []int{2}}},
			}.Build()
		},
	}
	regs := [runtime.NumRegisters]int64{4 << 20, 1, 20, 1, 0, 15, 0, 1}
	for name, src := range All {
		it := core.MustLoad(name, src, core.BackendInterpreter)
		cc := core.MustLoad(name, src, core.BackendCompiled)
		bc := core.MustLoad(name, src, core.BackendVM)
		for i, build := range builds {
			envI, envC, envV := build(), build(), build()
			*envI.Regs, *envC.Regs, *envV.Regs = regs, regs, regs
			it.Exec(envI)
			cc.Exec(envC)
			bc.Exec(envV)
			if !envtest.SameActions(envI.Actions, envC.Actions) || !envtest.SameActions(envI.Actions, envV.Actions) {
				t.Errorf("%s env %d: backend divergence\ninterp:   %v\ncompiled: %v\nvm:       %v",
					name, i, envI.Actions, envC.Actions, envV.Actions)
			}
			if *envI.Regs != *envC.Regs || *envI.Regs != *envV.Regs {
				t.Errorf("%s env %d: register divergence", name, i)
			}
		}
	}
}

func exec(t *testing.T, src string, env *runtime.Env) {
	t.Helper()
	core.MustLoad("t", src, core.BackendCompiled).Exec(env)
}

func pushes(env *runtime.Env) []runtime.Action {
	var out []runtime.Action
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionPush {
			out = append(out, a)
		}
	}
	return out
}

func TestMinRTTIgnoresBackupWhenNonBackupExists(t *testing.T) {
	// Non-backup subflow is cwnd-exhausted; the default scheduler must
	// NOT fall over to the backup (backup is used only when no
	// non-backup subflow exists at all, §3.4).
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 2, InFlight: 2},
			{ID: 1, RTT: 40000, Cwnd: 10, Backup: true},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, MinRTT, env)
	if len(pushes(env)) != 0 {
		t.Errorf("default scheduler used backup subflow while a non-backup exists: %v", env.Actions)
	}
}

func TestMinRTTUsesBackupWhenAlone(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 40000, Cwnd: 10, Backup: true}},
		Q:        []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, MinRTT, env)
	if len(pushes(env)) != 1 {
		t.Errorf("default scheduler must use a lone backup subflow")
	}
}

func TestOpportunisticRedundantSendsFreshOnAllAvailable(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10},
			{ID: 1, RTT: 40000, Cwnd: 10},
			{ID: 2, RTT: 20000, Cwnd: 2, InFlight: 2}, // exhausted
		},
		Q: []envtest.PktSpec{{Seq: 0}, {Seq: 1}},
	}.Build()
	exec(t, OpportunisticRedundant, env)
	ps := pushes(env)
	if len(ps) != 2 {
		t.Fatalf("got %d pushes, want 2 (both available subflows)", len(ps))
	}
	if ps[0].Packet != ps[1].Packet {
		t.Errorf("both pushes must carry the same fresh packet")
	}
	// The packet must also be dropped from Q (it was pushed via TOP).
	var dropped bool
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionDrop && a.Packet == ps[0].Packet {
			dropped = true
		}
	}
	if !dropped {
		t.Errorf("fresh packet not removed from Q after redundant push: %v", env.Actions)
	}
}

func TestRedundantIfNoQFavorsFreshPackets(t *testing.T) {
	// With data in Q, exactly one (non-redundant) push must happen.
	env := envtest.TwoSubflowEnv(2)
	exec(t, RedundantIfNoQ, env)
	if n := len(pushes(env)); n != 1 {
		t.Errorf("with Q non-empty, RedundantIfNoQ must send exactly one fresh packet, got %d", n)
	}
	// With Q empty, it must retransmit QU packets on subflows that have
	// not carried them.
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10},
			{ID: 1, RTT: 40000, Cwnd: 10},
		},
		QU: []envtest.PktSpec{{Seq: 5, SentOn: []int{0}}},
	}.Build()
	exec(t, RedundantIfNoQ, env2)
	ps := pushes(env2)
	if len(ps) != 1 {
		t.Fatalf("got %d pushes, want 1 redundant copy", len(ps))
	}
	if ps[0].Subflow != env2.SubflowViews[1].Handle {
		t.Errorf("redundant copy must go to the subflow that has not sent the packet")
	}
}

func TestCompensatingRetransmitsAtFlowEnd(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10},
			{ID: 1, RTT: 40000, Cwnd: 10},
		},
		QU: []envtest.PktSpec{
			{Seq: 32, SentOn: []int{1}},
			{Seq: 33, SentOn: []int{0}},
		},
	}.Build()
	env.Regs[RegFlowEnd] = 1
	exec(t, Compensating, env)
	ps := pushes(env)
	if len(ps) != 2 {
		t.Fatalf("got %d pushes, want 2 (one compensation per subflow)", len(ps))
	}
	// Without the flow-end signal nothing may happen.
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10000, Cwnd: 10}, {ID: 1, RTT: 40000, Cwnd: 10}},
		QU:       []envtest.PktSpec{{Seq: 32, SentOn: []int{1}}},
	}.Build()
	exec(t, Compensating, env2)
	if len(pushes(env2)) != 0 {
		t.Errorf("compensation must only trigger on the end-of-flow signal")
	}
}

func TestSelectiveCompensationRespectsRatioThreshold(t *testing.T) {
	build := func(slowRTT int64) *runtime.Env {
		env := envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{
				{ID: 0, RTT: 10000, Cwnd: 10},
				{ID: 1, RTT: slowRTT, Cwnd: 10},
			},
			QU: []envtest.PktSpec{{Seq: 32, SentOn: []int{1}}},
		}.Build()
		env.Regs[RegFlowEnd] = 1
		env.Regs[RegCompRatio] = 20 // ratio 2.0
		return env
	}
	low := build(15000) // ratio 1.5 < 2
	exec(t, SelectiveCompensation, low)
	if len(pushes(low)) != 0 {
		t.Errorf("ratio 1.5 must not compensate")
	}
	high := build(40000) // ratio 4 > 2
	exec(t, SelectiveCompensation, high)
	if len(pushes(high)) == 0 {
		t.Errorf("ratio 4 must compensate")
	}
}

func TestTAPPrefersWiFiAndBoundsLTE(t *testing.T) {
	// Preferred subflow available → use it, never LTE.
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10, Throughput: 3 << 20},
			{ID: 1, RTT: 40000, Cwnd: 10, Throughput: 8 << 20, Backup: true},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	env.Regs[RegTarget] = 4 << 20
	exec(t, TAP, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Subflow != env.SubflowViews[0].Handle {
		t.Fatalf("TAP must prefer the non-backup subflow: %v", env.Actions)
	}
	// Preferred exhausted and its throughput below target → LTE may
	// carry the leftover.
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 4, InFlight: 4, Throughput: 1 << 20},
			{ID: 1, RTT: 40000, Cwnd: 10, Throughput: 8 << 20, Backup: true},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	env2.Regs[RegTarget] = 4 << 20
	exec(t, TAP, env2)
	ps2 := pushes(env2)
	if len(ps2) != 1 || ps2[0].Subflow != env2.SubflowViews[1].Handle {
		t.Fatalf("TAP must spill to LTE when the preferred path cannot sustain the target: %v", env2.Actions)
	}
	// Preferred exhausted but throughput target met → do not use LTE.
	env3 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 4, InFlight: 4, Throughput: 5 << 20},
			{ID: 1, RTT: 40000, Cwnd: 10, Throughput: 8 << 20, Backup: true},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	env3.Regs[RegTarget] = 4 << 20
	exec(t, TAP, env3)
	if len(pushes(env3)) != 0 {
		t.Errorf("TAP must not use LTE when WiFi meets the target: %v", env3.Actions)
	}
}

func TestTargetRTTFallsBackWhenPreferredTooSlow(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 90000, Cwnd: 10},               // WiFi with RTT spike
			{ID: 1, RTT: 40000, Cwnd: 10, Backup: true}, // LTE
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	env.Regs[RegTarget] = 50000 // 50 ms tolerable
	exec(t, TargetRTT, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Subflow != env.SubflowViews[1].Handle {
		t.Fatalf("TargetRTT must use LTE when WiFi exceeds the RTT bound: %v", env.Actions)
	}
	env.Regs[RegTarget] = 100000 // relaxed bound: prefer WiFi again
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 90000, Cwnd: 10},
			{ID: 1, RTT: 40000, Cwnd: 10, Backup: true},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	env2.Regs[RegTarget] = 100000
	exec(t, TargetRTT, env2)
	ps2 := pushes(env2)
	if len(ps2) != 1 || ps2[0].Subflow != env2.SubflowViews[0].Handle {
		t.Fatalf("TargetRTT must prefer WiFi when it meets the bound: %v", env2.Actions)
	}
}

func TestHandoverAwareRetransmitsFromDyingSubflow(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10}, // dying WiFi
			{ID: 1, RTT: 40000, Cwnd: 10}, // fresh LTE
		},
		QU: []envtest.PktSpec{{Seq: 7, SentOn: []int{0}}},
	}.Build()
	env.Regs[RegHandover] = 1
	env.Regs[RegHandoverSbf] = 0
	exec(t, HandoverAware, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Subflow != env.SubflowViews[1].Handle {
		t.Fatalf("handover-aware must retransmit the WiFi packet on LTE: %v", env.Actions)
	}
}

func TestHTTP2AwareContentClasses(t *testing.T) {
	build := func(prop int64) *runtime.Env {
		return envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{
				{ID: 0, RTT: 10000, Cwnd: 10},
				{ID: 1, RTT: 50000, Cwnd: 10, Backup: true},
			},
			Q: []envtest.PktSpec{{Seq: 0, Prop: prop}},
		}.Build()
	}
	// Dependency-critical: only the low-RTT subflow, packet leaves Q.
	env := build(PropDependency)
	exec(t, HTTP2Aware, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Subflow != env.SubflowViews[0].Handle {
		t.Fatalf("dependency packets must avoid the high-RTT subflow: %v", env.Actions)
	}
	// Required content: default minRTT → WiFi.
	env2 := build(PropRequired)
	exec(t, HTTP2Aware, env2)
	if ps := pushes(env2); len(ps) != 1 || ps[0].Subflow != env2.SubflowViews[0].Handle {
		t.Fatalf("required content must use minRTT: %v", env2.Actions)
	}
	// Deferrable content: preference-aware → WiFi only; if WiFi gone,
	// wait rather than using LTE.
	env3 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 2, InFlight: 2}, // WiFi exhausted
			{ID: 1, RTT: 50000, Cwnd: 10, Backup: true},
		},
		Q: []envtest.PktSpec{{Seq: 0, Prop: PropDeferrable}},
	}.Build()
	exec(t, HTTP2Aware, env3)
	if len(pushes(env3)) != 0 {
		t.Errorf("deferrable content must not spill to the metered subflow: %v", env3.Actions)
	}
}

func TestProbingPushesOnIdleSubflows(t *testing.T) {
	sched := core.MustLoad("probe", ProbingMinRTT, core.BackendCompiled)
	var regs [runtime.NumRegisters]int64
	probed := false
	for i := 0; i < 16; i++ {
		env := envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{
				{ID: 0, RTT: 10000, Cwnd: 10, InFlight: 2},
				{ID: 1, RTT: 40000, Cwnd: 10, InFlight: 0}, // idle
			},
			QU: []envtest.PktSpec{{Seq: 3, SentOn: []int{0}}},
		}.Build()
		*env.Regs = regs
		sched.Exec(env)
		regs = *env.Regs
		for _, a := range pushes(env) {
			if a.Subflow == env.SubflowViews[1].Handle {
				probed = true
			}
		}
	}
	if !probed {
		t.Errorf("probing scheduler never probed the idle subflow in 16 executions")
	}
}

// TestSpecificationSizes documents the code-size claim of §2.2: the
// plain round-robin scheduler needs 301 lines of C in the kernel, while
// the corpus specifications stay well under 60 lines each.
func TestSpecificationSizes(t *testing.T) {
	for name, src := range All {
		lines := 0
		for _, l := range strings.Split(src, "\n") {
			if strings.TrimSpace(l) != "" {
				lines++
			}
		}
		if lines > 60 {
			t.Errorf("%s has %d non-empty lines; specifications should stay concise", name, lines)
		}
		if lines == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestDeadlineAwareEngagesBackupOnlyUnderPressure(t *testing.T) {
	build := func(deadlineUS int64) *runtime.Env {
		env := envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{
				{ID: 0, RTT: 10000, Cwnd: 2, InFlight: 2, Throughput: 1 << 20}, // pref, exhausted
				{ID: 1, RTT: 40000, Cwnd: 10, Throughput: 8 << 20, Backup: true},
			},
			Q: []envtest.PktSpec{{Seq: 0}, {Seq: 1}, {Seq: 2}, {Seq: 3}},
		}.Build()
		env.Regs[RegTarget] = deadlineUS
		return env
	}
	// Q holds ~4*1460 bytes; preferred throughput 1 MB/s → ~5.6 ms
	// needed. A generous 1 s deadline must not engage the backup.
	relaxed := build(1000000)
	exec(t, DeadlineAware, relaxed)
	if len(pushes(relaxed)) != 0 {
		t.Errorf("deadline 1s: backup engaged needlessly: %v", relaxed.Actions)
	}
	// A 1 ms deadline cannot be met on the preferred path alone.
	tight := build(1000)
	exec(t, DeadlineAware, tight)
	ps := pushes(tight)
	if len(ps) != 1 || ps[0].Subflow != tight.SubflowViews[1].Handle {
		t.Errorf("deadline 1ms: backup must engage: %v", tight.Actions)
	}
}

func TestCwndRelaxTailPushesFlowTail(t *testing.T) {
	build := func(qlen int) *runtime.Env {
		spec := envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{
				{ID: 0, RTT: 10000, Cwnd: 4, InFlight: 4}, // exhausted
				{ID: 1, RTT: 40000, Cwnd: 4, InFlight: 4}, // exhausted
			},
		}
		for i := 0; i < qlen; i++ {
			spec.Q = append(spec.Q, envtest.PktSpec{Seq: int64(i)})
		}
		env := spec.Build()
		env.Regs[RegHandoverSbf] = 3 // R5 = relax for the last 3 packets
		return env
	}
	long := build(10) // not the tail yet: respect cwnd
	exec(t, CwndRelaxTail, long)
	if len(pushes(long)) != 0 {
		t.Errorf("mid-flow push despite exhausted cwnd: %v", long.Actions)
	}
	tail := build(2) // flow tail: relax the constraint, save an RTT
	exec(t, CwndRelaxTail, tail)
	ps := pushes(tail)
	if len(ps) != 1 || ps[0].Subflow != tail.SubflowViews[0].Handle {
		t.Errorf("tail packet not pushed on the fastest subflow: %v", tail.Actions)
	}
}

func TestLastSentUSProperty(t *testing.T) {
	// "whether and when the packet was sent" (§3.1): retransmit only
	// packets whose last transmission is older than R1 µs.
	src := `
VAR stale = QU.FILTER(p => p.LAST_SENT_US > R1).TOP;
IF (stale != NULL) {
    SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(stale);
}`
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10000, Cwnd: 10}},
		QU: []envtest.PktSpec{
			{Seq: 1, SentOn: []int{0}, AgeUS: 5000, LastSentUS: 5000},
			{Seq: 2, SentOn: []int{0}, AgeUS: 90000, LastSentUS: 90000},
		},
	}.Build()
	env.Regs[RegTarget] = 50000 // stale above 50 ms
	exec(t, src, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Packet != runtime.PacketHandle(10002) {
		t.Fatalf("expected only the 90ms-old packet retransmitted, got %v", env.Actions)
	}
	// Never-sent packets report -1 and must not look stale.
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10000, Cwnd: 10}},
		Q:        []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, `VAR unsent = Q.FILTER(p => p.LAST_SENT_US == -1).TOP;
IF (unsent != NULL) { SET(R8, 1); }`, env2)
	if env2.Reg(7) != 1 {
		t.Errorf("never-sent packet should report LAST_SENT_US == -1")
	}
}

func TestQAwarePenalizesOccupiedLinks(t *testing.T) {
	// Subflow 0 has the lower RTT but a full transmit queue; with the
	// occupancy term each queued byte counts like a microsecond, so the
	// emptier, slower path wins.
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10, LinkQueued: 64000},
			{ID: 1, RTT: 40000, Cwnd: 10, LinkQueued: 0},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, QAware, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Subflow != env.SubflowViews[1].Handle {
		t.Fatalf("qaware must steer around the occupied link: %v", env.Actions)
	}
	// With empty queues it degrades to minRTT.
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10},
			{ID: 1, RTT: 40000, Cwnd: 10},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, QAware, env2)
	if ps := pushes(env2); len(ps) != 1 || ps[0].Subflow != env2.SubflowViews[0].Handle {
		t.Fatalf("qaware with empty queues must pick minRTT: %v", env2.Actions)
	}
}

func TestJointFlowShunsDegradedDestinations(t *testing.T) {
	// Another connection observed quarantines on the fast path: shun it.
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10, XQuar: 1},
			{ID: 1, RTT: 40000, Cwnd: 10},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, JointFlow, env)
	ps := pushes(env)
	if len(ps) != 1 || ps[0].Subflow != env.SubflowViews[1].Handle {
		t.Fatalf("jointFlow must avoid the quarantined destination: %v", env.Actions)
	}
	// Shared loss events beyond the R1+8 bound shun the path too.
	env2 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10, XLost: 50},
			{ID: 1, RTT: 40000, Cwnd: 10},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, JointFlow, env2)
	if ps := pushes(env2); len(ps) != 1 || ps[0].Subflow != env2.SubflowViews[1].Handle {
		t.Fatalf("jointFlow must avoid the lossy destination: %v", env2.Actions)
	}
	// Every destination degraded → fall back to minRTT over avail
	// rather than starving.
	env3 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10, XQuar: 2},
			{ID: 1, RTT: 40000, Cwnd: 10, XQuar: 1},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, JointFlow, env3)
	if ps := pushes(env3); len(ps) != 1 || ps[0].Subflow != env3.SubflowViews[0].Handle {
		t.Fatalf("jointFlow with no healthy path must fall back to minRTT: %v", env3.Actions)
	}
	// Without a store (all X-properties 0) it behaves like minRTT.
	env4 := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10},
			{ID: 1, RTT: 40000, Cwnd: 10},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	exec(t, JointFlow, env4)
	if ps := pushes(env4); len(ps) != 1 || ps[0].Subflow != env4.SubflowViews[0].Handle {
		t.Fatalf("jointFlow without shared state must degrade to minRTT: %v", env4.Actions)
	}
}

func TestTLSAwareKeepsRecordsCoherent(t *testing.T) {
	sched := core.MustLoad("tls", TLSAware, core.BackendCompiled)
	var regs [runtime.NumRegisters]int64
	targets := map[int64][]runtime.SubflowHandle{}
	// Three records (ids 11, 12, 13), two packets each, scheduled one
	// packet per execution with evolving RTTs so minRTT alone would
	// split records across subflows.
	sends := []struct {
		prop    int64
		fastRTT int64
	}{
		{11, 10000}, {11, 90000}, // record 11: fast flips mid-record
		{12, 90000}, {12, 10000},
		{13, 10000}, {13, 10000},
	}
	for _, s := range sends {
		env := envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{
				{ID: 0, RTT: s.fastRTT, Cwnd: 10},
				{ID: 1, RTT: 40000, Cwnd: 10},
			},
			Q: []envtest.PktSpec{{Seq: 0, Prop: s.prop}},
		}.Build()
		*env.Regs = regs
		sched.Exec(env)
		regs = *env.Regs
		for _, a := range env.Actions {
			if a.Kind == runtime.ActionPush {
				targets[s.prop] = append(targets[s.prop], a.Subflow)
			}
		}
	}
	for record, sbfs := range targets {
		if len(sbfs) != 2 {
			t.Errorf("record %d: %d pushes, want 2", record, len(sbfs))
			continue
		}
		if sbfs[0] != sbfs[1] {
			t.Errorf("record %d split across subflows %v (coherence violated)", record, sbfs)
		}
	}
	// Distinct records may use distinct subflows (record 12 started
	// while subflow 1 was fastest).
	if targets[11][0] == targets[12][0] {
		t.Logf("note: records 11 and 12 happened to share a subflow")
	}
}
