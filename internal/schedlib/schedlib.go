// Package schedlib is the scheduler corpus of the paper, expressed in
// the ProgMP specification language: the three mainline schedulers
// revisited in §3.4 (default/minRTT, round-robin, redundant) and the
// novel schedulers of §5 (OpportunisticRedundant, RedundantIfNoQ,
// Compensating, SelectiveCompensation, TAP, TargetRTT, HandoverAware,
// HTTP2Aware) plus the probing feature from the design-space table.
//
// Register conventions used by the corpus (set through the extended
// scheduling API, §3.2):
//
//	R1  application target (TAP: target throughput in bytes/s;
//	    TargetRTT: tolerable RTT in µs; HTTP2Aware: unused)
//	R2  end-of-flow signal (Compensating family: 1 = flow end)
//	R3  selective-compensation RTT-ratio threshold ×10 (default 20)
//	R4  handover signal (HandoverAware: 1 = handover in progress)
//	R5  id of the subflow being handed over away from
//	R6  scratch: probing counter
//	R7  scratch: accumulator (TAP capacity sum)
//
// Packet property (PROP) conventions for HTTP2Aware:
//
//	1 = initial data carrying external-dependency information
//	2 = remaining content required for the initial page view
//	3 = deferrable content not required for the initial view
package schedlib

// ReinjectPrelude is the kernel's reinjection-first behaviour as an
// explicit specification fragment: packets in RQ (suspected lost,
// §3.1) are reinjected on the fastest available subflow that has not
// carried them, before fresh data is considered. The paper shows
// scheduler *excerpts*; complete deployable schedulers handle RQ, and
// the minRTT-derived corpus members prepend this fragment.
const ReinjectPrelude = `
IF (!RQ.EMPTY) {
    VAR reAvail = SUBFLOWS.FILTER(re => !re.TSQ_THROTTLED AND !re.LOSSY
        AND re.CWND > re.SKBS_IN_FLIGHT + re.QUEUED
        AND !RQ.TOP.SENT_ON(re));
    IF (!reAvail.EMPTY) {
        reAvail.MIN(re => re.RTT).PUSH(RQ.POP());
    }
}
`

// MinRTT is the default scheduler of the MPTCP Linux kernel (§3.4):
// lowest-RTT subflow with a free congestion window, skipping
// TSQ-throttled and lossy subflows, with backup subflows used only when
// no non-backup subflow exists.
const MinRTT = ReinjectPrelude + `
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
    IF (SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP).EMPTY) {
        IF (!avail.EMPTY) {
            avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    } ELSE {
        VAR nb = avail.FILTER(sbf => !sbf.IS_BACKUP);
        IF (!nb.EMPTY) {
            nb.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// MinRTTOpportunistic extends MinRTT with the opportunistic
// retransmission feature (§3.4): when the fastest subflow's receive
// window cannot accommodate the next packet, an unacknowledged packet
// not yet sent on the fastest subflow is retransmitted there.
const MinRTTOpportunistic = ReinjectPrelude + `
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
    VAR nb = avail.FILTER(sbf => !sbf.IS_BACKUP);
    IF (!nb.EMPTY) {
        VAR minRttSbf = nb.MIN(sbf => sbf.RTT);
        IF (minRttSbf.HAS_WINDOW_FOR(Q.TOP)) {
            minRttSbf.PUSH(Q.POP());
        } ELSE {
            VAR skb = QU.FILTER(p => !p.SENT_ON(minRttSbf)).TOP;
            IF (skb != NULL) {
                minRttSbf.PUSH(skb);
            }
        }
    } ELSE {
        IF (!avail.EMPTY) {
            avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// RoundRobin is the cyclic scheduler of §3.4 (Fig. 5): register R8
// keeps the rotating index; subflows with exhausted congestion windows
// are skipped for work conservation.
const RoundRobin = `
VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
IF (R8 >= sbfs.COUNT) {
    SET(R8, 0);
}
IF (!Q.EMPTY) {
    VAR sbf = sbfs.GET(R8);
    IF (sbf != NULL AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
        sbf.PUSH(Q.POP());
    }
    SET(R8, R8 + 1);
}
`

// Redundant is the existing redundant scheduler (ReMP-style, §5.1
// Fig. 10a top): each subflow with a free congestion window first
// catches up on unacknowledged packets it has not carried yet, and only
// then takes fresh packets — full redundancy that favours old packets.
const Redundant = `
VAR sbfCandidates = SUBFLOWS.FILTER(sbf => !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
FOREACH (VAR sbf IN sbfCandidates) {
    VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
    IF (skb != NULL) {
        sbf.PUSH(skb);
    } ELSE {
        sbf.PUSH(Q.POP());
    }
}
`

// OpportunisticRedundant (§5.1, novel) sends a fresh packet on every
// subflow that has congestion window available when the packet is
// scheduled for the first time; as acknowledgements arrive it favours
// fresh packets over redundancy when the sending queue fills.
const OpportunisticRedundant = `
VAR sbfCandidates = SUBFLOWS.FILTER(sbf => !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!sbfCandidates.EMPTY AND !Q.EMPTY) {
    FOREACH (VAR sbf IN sbfCandidates) {
        sbf.PUSH(Q.TOP);
    }
    DROP(Q.POP());
}
`

// RedundantIfNoQ (§5.1, novel) always favours new packets and deploys
// redundancy only when the sending queue is empty, so redundancy never
// delays fresh data.
const RedundantIfNoQ = `
VAR sbfCandidates = SUBFLOWS.FILTER(sbf => !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
    IF (!sbfCandidates.EMPTY) {
        sbfCandidates.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }
} ELSE {
    FOREACH (VAR sbf IN sbfCandidates) {
        VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
        IF (skb != NULL) {
            sbf.PUSH(skb);
        }
    }
}
`

// Compensating (§5.3, Fig. 12 without the highlighted parts) uses the
// application's end-of-flow signal (R2) to compensate earlier
// scheduling decisions: at flow end every in-flight packet is
// retransmitted on each subflow that has not carried it.
const Compensating = ReinjectPrelude + `
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
    IF (!avail.EMPTY) {
        avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }
} ELSE {
    IF (R2 == 1) {
        FOREACH (VAR sbf IN SUBFLOWS.FILTER(c => !c.LOSSY
            AND c.CWND > c.SKBS_IN_FLIGHT + c.QUEUED)) {
            VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).FIRST;
            IF (skb != NULL) {
                sbf.PUSH(skb);
            }
        }
    }
}
`

// SelectiveCompensation (§5.3, Fig. 12 highlighted parts) compensates
// only when the subflow RTT ratio exceeds a threshold (R3, ratio ×10,
// default 20 = ratio 2), balancing FCT gains against the
// retransmission overhead.
const SelectiveCompensation = ReinjectPrelude + `
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
    IF (!avail.EMPTY) {
        avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }
} ELSE {
    IF (R2 == 1) {
        VAR fast = SUBFLOWS.MIN(sbf => sbf.RTT);
        VAR slow = SUBFLOWS.MAX(sbf => sbf.RTT);
        VAR threshold = R3;
        IF (fast != NULL AND slow.RTT * 10 > threshold * fast.RTT) {
            FOREACH (VAR sbf IN SUBFLOWS.FILTER(c => !c.LOSSY
                AND c.CWND > c.SKBS_IN_FLIGHT + c.QUEUED)) {
                VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).FIRST;
                IF (skb != NULL) {
                    sbf.PUSH(skb);
                }
            }
        }
    }
}
`

// TAP is the throughput- and preference-aware scheduler of §5.4
// (Fig. 13): preferred (non-backup) subflows are exhausted first, and
// non-preferred subflows carry only the leftover fraction of the
// application's target throughput (R1, bytes/s).
const TAP = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR prefAvail = SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP
        AND !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!prefAvail.EMPTY) {
        prefAvail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    } ELSE {
        SET(R7, 0);
        FOREACH (VAR p IN SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP)) {
            SET(R7, R7 + p.THROUGHPUT);
        }
        IF (R7 < R1) {
            VAR np = SUBFLOWS.FILTER(sbf => sbf.IS_BACKUP AND !sbf.LOSSY
                AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED).MIN(sbf => sbf.RTT);
            IF (np != NULL) {
                IF ((np.SKBS_IN_FLIGHT + np.QUEUED) * np.MSS * 1000000 < (R1 - R7) * np.RTT) {
                    np.PUSH(Q.POP());
                }
            }
        }
    }
}
`

// TargetRTT (§5.4) retains a maximum tolerable RTT (R1, µs) for
// interactive request/response traffic: non-preferred subflows are
// used only when no preferred subflow currently meets the target.
const TargetRTT = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR prefFast = SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP
        AND !sbf.TSQ_THROTTLED AND !sbf.LOSSY AND sbf.RTT <= R1
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!prefFast.EMPTY) {
        prefFast.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    } ELSE {
        VAR any = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
        IF (!any.EMPTY) {
            any.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// HandoverAware (§5.2) reacts to the application's handover signal
// (R4 = 1, R5 = id of the degrading subflow) by aggressively
// retransmitting that subflow's unacknowledged packets on the freshest
// alternative, compensating losses during a WiFi→cellular handover.
const HandoverAware = ReinjectPrelude + `
IF (R4 == 1) {
    VAR alt = SUBFLOWS.FILTER(sbf => sbf.ID != R5 AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED).MIN(sbf => sbf.RTT);
    IF (alt != NULL) {
        VAR skb = QU.FILTER(p => !p.SENT_ON(alt)).TOP;
        IF (skb != NULL) {
            alt.PUSH(skb);
        }
    }
}
IF (!Q.EMPTY) {
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    VAR usable = avail.FILTER(sbf => R4 == 0 OR sbf.ID != R5);
    IF (!usable.EMPTY) {
        usable.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    } ELSE {
        IF (!avail.EMPTY) {
            avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// HTTP2Aware is the content-aware scheduler of §5.5 (Fig. 14): packets
// whose application-set property marks them dependency-critical
// (PROP = 1) avoid high-RTT subflows and are sent redundantly on all
// low-RTT subflows; content required for the initial page (PROP = 2)
// uses the default minimum-RTT strategy; deferrable content (PROP = 3)
// is preference-aware and stays off non-preferred (metered) subflows.
const HTTP2Aware = ReinjectPrelude + `
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY AND !avail.EMPTY) {
    VAR skb = Q.TOP;
    IF (skb.PROP == 1) {
        VAR fastest = SUBFLOWS.MIN(sbf => sbf.RTT);
        VAR lowRtt = avail.FILTER(sbf => sbf.RTT < 2 * fastest.RTT);
        IF (!lowRtt.EMPTY) {
            FOREACH (VAR sbf IN lowRtt) {
                sbf.PUSH(Q.TOP);
            }
            DROP(Q.POP());
        }
    } ELSE IF (skb.PROP == 3) {
        VAR pref = avail.FILTER(sbf => !sbf.IS_BACKUP);
        IF (!pref.EMPTY) {
            pref.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    } ELSE {
        avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }
}
`

// ProbingMinRTT augments MinRTT with the probing feature from the
// design-space table (Table 2): idle subflows are probed with a
// redundant copy of an in-flight packet every 8 executions, keeping
// their RTT and capacity estimates fresh for thin flows.
const ProbingMinRTT = ReinjectPrelude + `
SET(R6, R6 + 1);
IF (R6 >= 8) {
    SET(R6, 0);
    VAR idle = SUBFLOWS.FILTER(sbf => sbf.SKBS_IN_FLIGHT == 0 AND !sbf.LOSSY
        AND sbf.CWND > sbf.QUEUED);
    VAR probe = QU.TOP;
    IF (probe != NULL) {
        FOREACH (VAR sbf IN idle) {
            sbf.PUSH(probe);
        }
    }
}
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY AND !avail.EMPTY) {
    avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}
`

// MinRTTVariance explores the jitter-sensitive design mentioned in
// §3.4: among subflows whose average RTT stays below the application's
// bound (R1, µs), it picks the one with the smallest RTT variance.
const MinRTTVariance = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR steady = SUBFLOWS.FILTER(sbf => sbf.RTT_AVG < R1 AND !sbf.LOSSY
        AND !sbf.TSQ_THROTTLED AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!steady.EMPTY) {
        steady.MIN(sbf => sbf.RTT_VAR).PUSH(Q.POP());
    } ELSE {
        VAR avail = SUBFLOWS.FILTER(sbf => !sbf.LOSSY AND !sbf.TSQ_THROTTLED
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
        IF (!avail.EMPTY) {
            avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// DeadlineAware implements the deadline-driven row of the design-space
// table (Table 2: "Use backups if deadline would be violated") in the
// spirit of MP-DASH, but as a first-class scheduler with timely
// subflow information instead of a control loop above the default
// scheduler (§5.4, "Target Deadline"). The application keeps R1
// updated with the remaining time budget (µs) for the data currently
// queued; non-preferred subflows engage only when the preferred
// capacity cannot drain Q before the deadline.
const DeadlineAware = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR prefAvail = SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP
        AND !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!prefAvail.EMPTY) {
        prefAvail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    } ELSE {
        SET(R7, 0);
        FOREACH (VAR p IN SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP)) {
            SET(R7, R7 + p.THROUGHPUT);
        }
        VAR np = SUBFLOWS.FILTER(sbf => sbf.IS_BACKUP AND !sbf.LOSSY
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED).MIN(sbf => sbf.RTT);
        IF (np != NULL) {
            IF (Q.COUNT * np.MSS * 1000000 > R1 * R7) {
                np.PUSH(Q.POP());
            }
        }
    }
}
`

// CwndRelaxTail is the cross-concern optimization sketched in §6
// ("the scheduler could, for example, relax the congestion window
// constraint ... for the last few N packets of a flow to save an
// RTT"): when at most R5 packets remain in Q and every subflow is
// congestion-window-limited, the tail is pushed anyway on the fastest
// non-lossy subflow.
const CwndRelaxTail = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!avail.EMPTY) {
        avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    } ELSE IF (Q.COUNT <= R5) {
        VAR anySbf = SUBFLOWS.FILTER(sbf => !sbf.LOSSY);
        IF (!anySbf.EMPTY) {
            anySbf.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// TLSAware implements the TLS row of the design-space table (Table 2:
// "TLS-aware — coherence of TLS records"): all packets of one TLS
// record (identified by the application's per-packet intent, PROP =
// record id) stay on the subflow that carried the record's first
// packet, so the receiver can decrypt each record as soon as its
// subflow delivers it, without waiting for cross-subflow reassembly.
// R5 remembers the current record id, R6 the subflow carrying it.
const TLSAware = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR skb = Q.TOP;
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (skb.PROP == R5) {
        VAR same = avail.FILTER(sbf => sbf.ID == R6);
        IF (!same.EMPTY) {
            same.GET(0).PUSH(Q.POP());
        } ELSE IF (SUBFLOWS.FILTER(sbf => sbf.ID == R6).EMPTY) {
            // The record's subflow is gone entirely (not merely
            // busy): re-pin the record to keep the stream alive.
            VAR alt = avail.MIN(sbf => sbf.RTT);
            IF (alt != NULL) {
                SET(R6, alt.ID);
                alt.PUSH(Q.POP());
            }
        }
    } ELSE {
        IF (!avail.EMPTY) {
            VAR pick = avail.MIN(sbf => sbf.RTT);
            SET(R5, skb.PROP);
            SET(R6, pick.ID);
            pick.PUSH(Q.POP());
        }
    }
}
`

// QAware is the occupancy-aware scheduler enabled by the shared-state
// subsystem's environment extension: it ranks available subflows by a
// composite of measured RTT and LINK_QUEUED, the bytes currently
// sitting in the path's transmit queue, so a path whose queue is
// filling loses attractiveness *before* its RTT estimate catches up.
// Queued bytes are weighted at (R1 + 1) µs-equivalents per byte — with
// R1 unset one queued byte counts like one microsecond of RTT (a path
// draining ~1 MB/s breaks even), and the application can raise R1 to
// penalize occupancy harder.
const QAware = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!avail.EMPTY) {
        avail.MIN(sbf => sbf.RTT + sbf.LINK_QUEUED * (R1 + 1)).PUSH(Q.POP());
    }
}
`

// JointFlow is the joint-flow scheduler over the cross-connection
// shared-state store ("more than the sum of its parts"): it consults
// the per-destination statistics other connections have fed — XQUAR
// (quarantine/RTO signals), XLOST (loss events) and XRTT (the shared
// smoothed RTT) — and steers traffic away from paths the fleet has
// observed degrading, before this connection has sent a single packet
// on them. Paths with any quarantine signal or more than R1 + 8 shared
// loss events are shunned as long as any healthy destination exists —
// even one that is momentarily cwnd-limited: in that case the
// scheduler declines to push and lets the ACK clock re-trigger it,
// instead of spilling onto the path the fleet flagged (backup-path
// semantics, §3.4). Only when every subflow is degraded does it fall
// back to minRTT over the availability filter rather than starve.
// Among healthy paths the rank blends the connection's own RTT with
// twice the shared estimate, so a fresh connection inherits the
// fleet's view and an unobserved path (XRTT = 0) ranks by plain RTT.
// Without an attached store every X-property reads 0, every subflow
// counts as healthy, and the scheduler degrades to exactly minRTT.
const JointFlow = ReinjectPrelude + `
IF (!Q.EMPTY) {
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    VAR healthy = avail.FILTER(sbf => sbf.XQUAR == 0 AND sbf.XLOST < R1 + 8);
    IF (!healthy.EMPTY) {
        healthy.MIN(sbf => sbf.RTT + 2 * sbf.XRTT).PUSH(Q.POP());
    } ELSE {
        VAR anyHealthy = SUBFLOWS.FILTER(sbf => sbf.XQUAR == 0 AND sbf.XLOST < R1 + 8);
        IF (anyHealthy.EMPTY AND !avail.EMPTY) {
            avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }
    }
}
`

// All maps registry names to specifications for bulk loading.
var All = map[string]string{
	"minRTT":                 MinRTT,
	"minRTTOpportunistic":    MinRTTOpportunistic,
	"roundRobin":             RoundRobin,
	"redundant":              Redundant,
	"opportunisticRedundant": OpportunisticRedundant,
	"redundantIfNoQ":         RedundantIfNoQ,
	"compensating":           Compensating,
	"selectiveCompensation":  SelectiveCompensation,
	"tap":                    TAP,
	"targetRTT":              TargetRTT,
	"handoverAware":          HandoverAware,
	"http2Aware":             HTTP2Aware,
	"probingMinRTT":          ProbingMinRTT,
	"minRTTVariance":         MinRTTVariance,
	"deadlineAware":          DeadlineAware,
	"cwndRelaxTail":          CwndRelaxTail,
	"tlsAware":               TLSAware,
	"qaware":                 QAware,
	"jointFlow":              JointFlow,
}

// Register conventions as named constants for API users.
const (
	// RegTarget is R1: the application's performance target (TAP:
	// bytes/s; TargetRTT and MinRTTVariance: µs).
	RegTarget = 0
	// RegFlowEnd is R2: set to 1 when the application signals the end
	// of the current flow (Compensating family).
	RegFlowEnd = 1
	// RegCompRatio is R3: selective-compensation RTT-ratio threshold
	// ×10.
	RegCompRatio = 2
	// RegHandover is R4: set to 1 while a handover is in progress.
	RegHandover = 3
	// RegHandoverSbf is R5: the id of the subflow being left.
	RegHandoverSbf = 4
)

// Packet property values for HTTP2Aware.
const (
	// PropDependency marks initial data carrying external-dependency
	// information (HTML head, priming resources).
	PropDependency = 1
	// PropRequired marks content required for the initial page view.
	PropRequired = 2
	// PropDeferrable marks content not required for the initial view.
	PropDeferrable = 3
)
