// Package envjson parses JSON descriptions of scheduler execution
// environments, powering the `progmpc exec` developer tool: scheduler
// authors describe a situation (subflows, queues, registers), run a
// specification against it, and inspect the resulting actions — the
// workflow the paper's tutorial teaches on https://progmp.net.
package envjson

import (
	"encoding/json"
	"fmt"
	"strings"

	"progmp/internal/runtime"
)

// SubflowSpec is one subflow in the JSON environment.
type SubflowSpec struct {
	RTTms        float64 `json:"rtt_ms"`
	RTTAvgMs     float64 `json:"rtt_avg_ms"`
	RTTVarMs     float64 `json:"rtt_var_ms"`
	Cwnd         int64   `json:"cwnd"`
	InFlight     int64   `json:"in_flight"`
	Queued       int64   `json:"queued"`
	Throughput   int64   `json:"throughput_bps"`
	MSS          int64   `json:"mss"`
	LostSkbs     int64   `json:"lost_skbs"`
	RTOms        float64 `json:"rto_ms"`
	Lossy        bool    `json:"lossy"`
	TSQThrottled bool    `json:"tsq_throttled"`
	Backup       bool    `json:"backup"`
	RWndFree     int64   `json:"rwnd_free"`
}

// PacketSpec is one packet in a queue.
type PacketSpec struct {
	Seq        int64 `json:"seq"`
	Size       int64 `json:"size"`
	Prop       int64 `json:"prop"`
	SentCount  int64 `json:"sent_count"`
	AgeUS      int64 `json:"age_us"`
	LastSentUS int64 `json:"last_sent_us"`
	SentOn     []int `json:"sent_on"`
}

// Spec is the whole environment.
type Spec struct {
	Subflows []SubflowSpec `json:"subflows"`
	Q        []PacketSpec  `json:"q"`
	QU       []PacketSpec  `json:"qu"`
	RQ       []PacketSpec  `json:"rq"`
	Regs     []int64       `json:"regs"`
}

// Parse decodes a JSON environment.
func Parse(data []byte) (*runtime.Env, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("envjson: %w", err)
	}
	return Build(spec)
}

// Build assembles a runtime environment from a decoded spec.
func Build(spec Spec) (*runtime.Env, error) {
	if len(spec.Subflows) > runtime.MaxSubflows {
		return nil, fmt.Errorf("envjson: %d subflows exceed the maximum %d", len(spec.Subflows), runtime.MaxSubflows)
	}
	if len(spec.Regs) > runtime.NumRegisters {
		return nil, fmt.Errorf("envjson: %d registers exceed R1..R%d", len(spec.Regs), runtime.NumRegisters)
	}
	var views []*runtime.SubflowView
	for i, s := range spec.Subflows {
		v := &runtime.SubflowView{Handle: runtime.SubflowHandle(i + 1)}
		v.Ints[runtime.SbfID] = int64(i)
		v.Ints[runtime.SbfRTT] = int64(s.RTTms * 1000)
		v.Ints[runtime.SbfRTTAvg] = int64(s.RTTAvgMs * 1000)
		if s.RTTAvgMs == 0 {
			v.Ints[runtime.SbfRTTAvg] = v.Ints[runtime.SbfRTT]
		}
		v.Ints[runtime.SbfRTTVar] = int64(s.RTTVarMs * 1000)
		v.Ints[runtime.SbfCwnd] = s.Cwnd
		v.Ints[runtime.SbfSkbsInFlight] = s.InFlight
		v.Ints[runtime.SbfQueued] = s.Queued
		v.Ints[runtime.SbfThroughput] = s.Throughput
		v.Ints[runtime.SbfMSS] = s.MSS
		if s.MSS == 0 {
			v.Ints[runtime.SbfMSS] = 1460
		}
		v.Ints[runtime.SbfLostSkbs] = s.LostSkbs
		v.Ints[runtime.SbfRTO] = int64(s.RTOms * 1000)
		v.Bools[runtime.SbfLossy] = s.Lossy
		v.Bools[runtime.SbfTSQThrottled] = s.TSQThrottled
		v.Bools[runtime.SbfIsBackup] = s.Backup
		v.RWndFreeBytes = s.RWndFree
		if s.RWndFree == 0 {
			v.RWndFreeBytes = 1 << 20
		}
		views = append(views, v)
	}
	mk := func(id runtime.QueueID, specs []PacketSpec) (*runtime.Queue, error) {
		var pkts []*runtime.PacketView
		for _, p := range specs {
			pv := &runtime.PacketView{Handle: runtime.PacketHandle(p.Seq + 1)}
			pv.Ints[runtime.PktSeq] = p.Seq
			pv.Ints[runtime.PktSize] = p.Size
			if p.Size == 0 {
				pv.Ints[runtime.PktSize] = 1460
			}
			pv.Ints[runtime.PktProp] = p.Prop
			pv.Ints[runtime.PktSentCount] = p.SentCount
			pv.Ints[runtime.PktAgeUS] = p.AgeUS
			pv.Ints[runtime.PktLastSentUS] = p.LastSentUS
			if p.LastSentUS == 0 && p.SentCount == 0 && len(p.SentOn) == 0 {
				pv.Ints[runtime.PktLastSentUS] = -1
			}
			for _, id := range p.SentOn {
				if id < 0 || id >= len(spec.Subflows) {
					return nil, fmt.Errorf("envjson: packet %d sent_on references unknown subflow %d", p.Seq, id)
				}
				pv.SentOnMask |= 1 << uint(id)
			}
			pkts = append(pkts, pv)
		}
		return runtime.NewQueue(id, pkts), nil
	}
	q, err := mk(runtime.QueueSend, spec.Q)
	if err != nil {
		return nil, err
	}
	qu, err := mk(runtime.QueueUnacked, spec.QU)
	if err != nil {
		return nil, err
	}
	rq, err := mk(runtime.QueueReinject, spec.RQ)
	if err != nil {
		return nil, err
	}
	var regs [runtime.NumRegisters]int64
	copy(regs[:], spec.Regs)
	return runtime.NewEnv(views, q, qu, rq, &regs), nil
}

// FormatActions renders an action queue for the tool output, resolving
// handles back to human-readable packet seqs and subflow ids.
func FormatActions(env *runtime.Env) string {
	if len(env.Actions) == 0 {
		return "(no actions)\n"
	}
	var b strings.Builder
	for i, a := range env.Actions {
		switch a.Kind {
		case runtime.ActionPop:
			fmt.Fprintf(&b, "%2d: POP  seq %-6d from %s\n", i, int64(a.Packet)-1, a.Queue)
		case runtime.ActionPush:
			fmt.Fprintf(&b, "%2d: PUSH seq %-6d on subflow %d\n", i, int64(a.Packet)-1, int64(a.Subflow)-1)
		case runtime.ActionDrop:
			fmt.Fprintf(&b, "%2d: DROP seq %-6d\n", i, int64(a.Packet)-1)
		}
	}
	return b.String()
}

// Example returns a documented starting environment for `progmpc exec`.
func Example() string {
	return `{
  "subflows": [
    {"rtt_ms": 10, "cwnd": 10, "in_flight": 2, "throughput_bps": 3000000},
    {"rtt_ms": 40, "cwnd": 20, "in_flight": 1, "throughput_bps": 8000000, "backup": true}
  ],
  "q":  [{"seq": 0}, {"seq": 1}],
  "qu": [{"seq": -5, "sent_on": [0], "age_us": 12000, "last_sent_us": 12000}],
  "rq": [],
  "regs": [4194304]
}
`
}
