package envjson

import (
	"strings"
	"testing"

	"progmp/internal/core"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
)

func TestParseExample(t *testing.T) {
	env, err := Parse([]byte(Example()))
	if err != nil {
		t.Fatalf("Parse(Example): %v", err)
	}
	if len(env.SubflowViews) != 2 {
		t.Fatalf("subflows = %d, want 2", len(env.SubflowViews))
	}
	if got := env.SubflowViews[0].Ints[runtime.SbfRTT]; got != 10000 {
		t.Errorf("RTT = %d µs, want 10000", got)
	}
	if !env.SubflowViews[1].Bools[runtime.SbfIsBackup] {
		t.Errorf("second subflow should be backup")
	}
	if env.SendQ.Len() != 2 || env.UnackedQ.Len() != 1 || env.ReinjectQ.Len() != 0 {
		t.Errorf("queues = %d/%d/%d, want 2/1/0", env.SendQ.Len(), env.UnackedQ.Len(), env.ReinjectQ.Len())
	}
	if env.Reg(0) != 4194304 {
		t.Errorf("R1 = %d, want 4194304", env.Reg(0))
	}
	// The QU packet was sent on subflow 0.
	if !env.UnackedQ.Top().SentOn(env.SubflowViews[0]) {
		t.Errorf("QU packet should be marked sent on subflow 0")
	}
}

func TestParseRejects(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"subflowz": []}`},
		{"bad sent_on", `{"subflows": [{"rtt_ms": 1}], "qu": [{"seq": 0, "sent_on": [5]}]}`},
		{"too many regs", `{"regs": [1,2,3,4,5,6,7,8,9]}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.src)); err == nil {
				t.Errorf("Parse accepted %q", tc.src)
			}
		})
	}
}

func TestExampleDrivesScheduler(t *testing.T) {
	env, err := Parse([]byte(Example()))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Load("minRTT", schedlib.MinRTT, core.BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	sched.Exec(env)
	if env.PushCount() != 1 {
		t.Fatalf("example env did not produce a scheduling decision: %v", env.Actions)
	}
	out := FormatActions(env)
	if !strings.Contains(out, "PUSH") || !strings.Contains(out, "subflow 0") {
		t.Errorf("FormatActions output unexpected:\n%s", out)
	}
}

func TestFormatActionsEmpty(t *testing.T) {
	env := runtime.NewEnv(nil, nil, nil, nil, nil)
	if got := FormatActions(env); !strings.Contains(got, "no actions") {
		t.Errorf("empty action queue rendered as %q", got)
	}
}

func TestPacketDefaults(t *testing.T) {
	env, err := Parse([]byte(`{"q": [{"seq": 3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	p := env.SendQ.Top()
	if p.Ints[runtime.PktSize] != 1460 {
		t.Errorf("default size = %d, want 1460", p.Ints[runtime.PktSize])
	}
	if p.Ints[runtime.PktLastSentUS] != -1 {
		t.Errorf("never-sent packet LAST_SENT_US = %d, want -1", p.Ints[runtime.PktLastSentUS])
	}
}
