module progmp

go 1.22
