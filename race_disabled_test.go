//go:build !race

package progmp

const raceEnabled = false
