// Allocation regression guards for the Fig. 9 hot path: every
// scheduler back-end must execute with zero allocations in steady
// state (the arena owns all snapshot memory; executions only recycle
// it). CI additionally runs BenchmarkFig09_ExecutionOverhead with
// -benchmem and fails on any non-zero allocs/op, so both the tests and
// the benchmarks pin the same contract.
package progmp

import (
	"testing"

	"progmp/internal/core"
	"progmp/internal/interp"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
	"progmp/internal/vm"
)

func checkSource(src string) (*types.Info, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return types.Check(prog)
}

func TestExecZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts only hold on production builds")
	}
	backends := []struct {
		name  string
		build func(t *testing.T) interface{ Exec(*runtime.Env) }
	}{
		{"interpreter", func(t *testing.T) interface{ Exec(*runtime.Env) } {
			info, err := checkSource(schedlib.MinRTT)
			if err != nil {
				t.Fatal(err)
			}
			return interp.New(info)
		}},
		{"compiled", func(t *testing.T) interface{ Exec(*runtime.Env) } {
			return core.MustLoad("minRTT", schedlib.MinRTT, core.BackendCompiled)
		}},
		{"vm", func(t *testing.T) interface{ Exec(*runtime.Env) } {
			s := core.MustLoad("minRTT", schedlib.MinRTT, core.BackendVM)
			s.SetSynchronousSpecialization(true)
			return s
		}},
		{"vm-raw", func(t *testing.T) interface{ Exec(*runtime.Env) } {
			info, err := checkSource(schedlib.MinRTT)
			if err != nil {
				t.Fatal(err)
			}
			p, err := vm.Compile(info, vm.Options{SubflowCount: 2})
			if err != nil {
				t.Fatal(err)
			}
			return execAdapter{p}
		}},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			s := be.build(t)
			env := fig9Env(2)
			for i := 0; i < 64; i++ { // warm caches, pools, specialization
				env.Reset()
				s.Exec(env)
			}
			n := testing.AllocsPerRun(500, func() {
				env.Reset()
				s.Exec(env)
			})
			if n != 0 {
				t.Errorf("%s: %.1f allocs per execution, want 0", be.name, n)
			}
		})
	}
}

// execAdapter gives the raw bytecode program the error-free Exec
// signature the table expects.
type execAdapter struct{ p *vm.Program }

func (a execAdapter) Exec(env *runtime.Env) { _ = a.p.Exec(env) }
