// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results). Micro-benchmarks
// (Fig. 9 top, §4.1 up-call, §4.3 memory) report per-operation costs;
// scenario benchmarks run one full simulation per iteration and attach
// the figure's headline quantities as custom metrics.
package progmp

import (
	"fmt"
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/envtest"
	"progmp/internal/experiments"
	"progmp/internal/interp"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/mptcp"
	"progmp/internal/mptcp/sched"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
	"progmp/internal/vm"
)

// ---- Fig. 9 (top): per-decision execution time across back-ends ----

// fig9Env builds the measurement environment of the overhead
// comparison: a populated send queue and available subflows so the
// default scheduler performs real selection work.
func fig9Env(subflows int) *runtime.Env {
	spec := envtest.EnvSpec{}
	for i := 0; i < subflows; i++ {
		spec.Subflows = append(spec.Subflows, envtest.SbfSpec{
			ID: i, RTT: int64(10000 + i*7000), RTTVar: 500, Cwnd: 64, InFlight: int64(i % 3),
		})
	}
	for i := 0; i < 4; i++ {
		spec.Q = append(spec.Q, envtest.PktSpec{Seq: int64(i)})
	}
	for i := 4; i < 6; i++ {
		spec.QU = append(spec.QU, envtest.PktSpec{Seq: int64(i), SentOn: []int{0}})
	}
	return spec.Build()
}

func benchExec(b *testing.B, s interface{ Exec(*runtime.Env) }, subflows int) {
	env := fig9Env(subflows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Reset()
		s.Exec(env)
	}
}

func BenchmarkFig09_ExecutionOverhead(b *testing.B) {
	for _, subflows := range []int{2, 4} {
		sbf := subflows
		b.Run("native/"+itoa(sbf), func(b *testing.B) {
			benchExec(b, sched.MinRTT{}, sbf)
		})
		b.Run("interpreter/"+itoa(sbf), func(b *testing.B) {
			info := mustCheck(b, schedlib.MinRTT)
			benchExec(b, interp.New(info), sbf)
		})
		b.Run("compiled/"+itoa(sbf), func(b *testing.B) {
			benchExec(b, core.MustLoad("minRTT", schedlib.MinRTT, core.BackendCompiled), sbf)
		})
		b.Run("vm/"+itoa(sbf), func(b *testing.B) {
			s := core.MustLoad("minRTT", schedlib.MinRTT, core.BackendVM)
			s.SetSynchronousSpecialization(true)
			benchExec(b, s, sbf)
		})
		b.Run("vm-raw/"+itoa(sbf), func(b *testing.B) {
			// The bare bytecode program without the core wrapper's
			// stats and cache lookups: the closest analogue of the
			// JIT-compiled code path.
			info := mustCheck(b, schedlib.MinRTT)
			p, err := vm.Compile(info, vm.Options{SubflowCount: sbf})
			if err != nil {
				b.Fatal(err)
			}
			env := fig9Env(sbf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				if err := p.Exec(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func parse(src string) (*lang.Program, error) { return lang.Parse(src) }

func mustCheck(b *testing.B, src string) *types.Info {
	b.Helper()
	info, err := func() (*types.Info, error) {
		prog, err := parse(src)
		if err != nil {
			return nil, err
		}
		return types.Check(prog)
	}()
	if err != nil {
		b.Fatal(err)
	}
	return info
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "big"
}

// ---- Fig. 9 (bottom): throughput parity across back-ends ----

func BenchmarkFig09_ThroughputParity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.ThroughputParity(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(r.GoodputBps/1e6, r.Backend+"-MB/s")
		}
	}
}

// ---- §4.1: up-call vs in-stack execution ----

func BenchmarkSec41_UpcallVsInStack(b *testing.B) {
	res, err := experiments.UpcallOverhead(b.N + 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.DirectNsPerOp, "direct-ns/op")
	b.ReportMetric(res.UpcallNsPerOp, "upcall-ns/op")
	b.ReportMetric(res.Factor, "factor")
}

// ---- §4.3: memory footprint ----

func BenchmarkSec43_MemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.MemoryFootprints()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(float64(r.ProgramBytes), r.Scheduler+"-B")
		}
		b.ReportMetric(float64(core.InstanceFootprint()), "instance-B")
	}
}

// ---- Fig. 1 + Fig. 13: interactive streaming ----

func BenchmarkFig01_Motivation(b *testing.B) {
	benchStreaming(b, experiments.StreamingDefault)
}

func BenchmarkFig13_TAP(b *testing.B) {
	benchStreaming(b, experiments.StreamingTAP)
}

func benchStreaming(b *testing.B, variant experiments.StreamingVariant) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Streaming(variant, core.BackendVM, int64(i+3))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LowPhaseLTEShare*100, "lte-share-low-%")
		b.ReportMetric(r.HighPhaseGoodput/1e6, "goodput-high-MB/s")
		b.ReportMetric(float64(r.LTEBytes)/1e6, "lte-MB")
	}
}

// ---- Fig. 10b: redundancy flavors, FCT vs flow size ----

func BenchmarkFig10b_RedundantFCT(b *testing.B) {
	for _, scheduler := range experiments.RedundancySchedulers {
		scheduler := scheduler
		b.Run(scheduler, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiments.RedundancyFCT(core.BackendVM, []int{16, 64, 256}, []string{scheduler}, 4)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range points {
					b.ReportMetric(float64(p.MeanFCT.Microseconds())/1000, fmt.Sprintf("%dKB-ms", p.FlowKB))
				}
			}
		})
	}
}

// ---- Fig. 10c: redundancy flavors, normalized throughput ----

func BenchmarkFig10c_RedundantThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RedundancyThroughput(core.BackendVM, experiments.RedundancySchedulers, int64(i+11))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.Normalized, p.Scheduler+"-"+p.Workload+"-x")
		}
	}
}

// ---- Fig. 12: flow-end compensation ----

func BenchmarkFig12_Compensation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.CompensationSweep(core.BackendVM, []float64{1, 4}, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.RTTRatio == 4 {
				b.ReportMetric(float64(p.MeanFCT.Microseconds())/1000, p.Scheduler+"-r4-ms")
			}
		}
	}
}

// ---- Fig. 14: HTTP/2-aware scheduling ----

func BenchmarkFig14_HTTP2Aware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.HTTP2Sweep(core.BackendVM, []time.Duration{40 * time.Millisecond}, int64(i+5))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(float64(p.DependencyRetrieved.Microseconds())/1000, p.Scheduler+"-deps-ms")
			b.ReportMetric(float64(p.LTEBytes)/1024, p.Scheduler+"-lte-KB")
		}
	}
}

// ---- §4.2: receiver-side packet handling ----

func BenchmarkSec42_ReceiverDelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.ReceiverComparison(core.BackendVM, int64(i+17))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(float64(r.MeanDeliveryLatency.Microseconds())/1000, r.Mode.String()+"-mean-ms")
		}
	}
}

// ---- §5.2: handover ----

func BenchmarkSec52_Handover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scheduler := range []string{"minRTT", "handoverAware"} {
			r, err := experiments.Handover(scheduler, core.BackendVM, int64(i+9))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.Interruption.Microseconds())/1000, scheduler+"-gap-ms")
		}
	}
}

// ---- §5.4: target RTT ----

func BenchmarkSec54_TargetRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scheduler := range []string{"minRTT", "targetRTT"} {
			r, err := experiments.TargetRTT(scheduler, core.BackendVM, int64(i+13))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.P95Response.Microseconds())/1000, scheduler+"-p95-ms")
		}
	}
}

// ---- Compiler pipeline micro-benchmarks ----

func BenchmarkCompilePipeline(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parse(schedlib.MinRTT); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check", func(b *testing.B) {
		prog, _ := parse(schedlib.MinRTT)
		for i := 0; i < b.N; i++ {
			if _, err := types.Check(prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile-vm", func(b *testing.B) {
		info := mustCheck(b, schedlib.MinRTT)
		for i := 0; i < b.N; i++ {
			if _, err := vm.Compile(info, vm.Options{SubflowCount: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablation benchmarks for DESIGN.md's called-out design choices ----

// BenchmarkAblation_VMSpecialization quantifies the constant-subflow-
// count specialization (§4.1): generic vs specialized bytecode for the
// same program and environment.
func BenchmarkAblation_VMSpecialization(b *testing.B) {
	info := mustCheck(b, schedlib.MinRTT)
	for _, variant := range []struct {
		name string
		opts vm.Options
	}{
		{"generic", vm.Options{SubflowCount: -1}},
		{"specialized", vm.Options{SubflowCount: 2}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			p, err := vm.Compile(info, variant.opts)
			if err != nil {
				b.Fatal(err)
			}
			env := fig9Env(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				if err := p.Exec(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_VMOptimizer measures the IR passes (jump
// threading + dead-code elimination): program size and execution time
// with and without them.
func BenchmarkAblation_VMOptimizer(b *testing.B) {
	info := mustCheck(b, schedlib.HTTP2Aware)
	for _, variant := range []struct {
		name    string
		disable bool
	}{
		{"optimized", false},
		{"unoptimized", true},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			p, err := vm.Compile(info, vm.Options{SubflowCount: -1, DisableOptimizations: variant.disable})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(p.Insns)), "insns")
			env := fig9Env(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				if err := p.Exec(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_CompressedExecutions compares the compressed-
// execution calling model (§4.1) against strictly one execution per
// trigger: flow completion time and scheduler invocations for a short
// transfer.
func BenchmarkAblation_CompressedExecutions(b *testing.B) {
	run := func(maxIter int) (time.Duration, int64) {
		eng := netsimEngine(1)
		conn := mptcpConn(eng, maxIter, false)
		var fct time.Duration
		var got int64
		const total = 128 << 10
		conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
			got += int64(size)
			if got >= total && fct == 0 {
				fct = at
			}
		})
		eng.After(0, func() { conn.Send(total, 0) })
		eng.RunUntil(20 * time.Second)
		return fct, conn.SchedulerExecutions
	}
	for i := 0; i < b.N; i++ {
		fctFull, execsFull := run(0) // default: compressed executions on
		fctOne, execsOne := run(1)
		b.ReportMetric(float64(fctFull.Microseconds())/1000, "compressed-fct-ms")
		b.ReportMetric(float64(fctOne.Microseconds())/1000, "single-exec-fct-ms")
		b.ReportMetric(float64(execsFull), "compressed-execs")
		b.ReportMetric(float64(execsOne), "single-execs")
	}
}

// BenchmarkAblation_TSQWake compares the TSQ-drain scheduler trigger
// against purely ACK-clocked scheduling (the trigger model of Fig. 4).
func BenchmarkAblation_TSQWake(b *testing.B) {
	run := func(disable bool) time.Duration {
		eng := netsimEngine(1)
		conn := mptcpConn(eng, 0, disable)
		var fct time.Duration
		var got int64
		const total = 128 << 10
		conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
			got += int64(size)
			if got >= total && fct == 0 {
				fct = at
			}
		})
		eng.After(0, func() { conn.Send(total, 0) })
		eng.RunUntil(20 * time.Second)
		return fct
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(false).Microseconds())/1000, "tsq-wake-fct-ms")
		b.ReportMetric(float64(run(true).Microseconds())/1000, "ack-clocked-fct-ms")
	}
}

// ---- Observability overhead (docs/OBSERVABILITY.md) ----

// BenchmarkObsOverhead quantifies the observability layer's cost on
// the hot paths. "exec-off" is the tracing-disabled VM execution path —
// the configuration that must stay within 2% of the seed's
// BenchmarkFig09 vm numbers, since uninstrumented code pays only
// nil checks on the obs handles. "exec-steps" adds the opt-in VM step
// counter. The transfer variants run a full 128 KiB two-path transfer
// per iteration with instrumentation off and fully on.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("exec-off", func(b *testing.B) {
		s := core.MustLoad("minRTT", schedlib.MinRTT, core.BackendVM)
		s.SetSynchronousSpecialization(true)
		benchExec(b, s, 2)
	})
	b.Run("exec-steps", func(b *testing.B) {
		s := core.MustLoad("minRTT", schedlib.MinRTT, core.BackendVM)
		s.SetSynchronousSpecialization(true)
		s.EnableStepMetrics()
		benchExec(b, s, 2)
	})
	transfer := func(b *testing.B, instrument bool) {
		for i := 0; i < b.N; i++ {
			eng := netsimEngine(int64(i + 1))
			conn := mptcpConn(eng, 0, false)
			if instrument {
				conn.Instrument(obs.NewTracer(0), obs.NewRegistry())
			}
			eng.After(0, func() { conn.Send(128<<10, 0) })
			eng.RunUntil(20 * time.Second)
			if !conn.AllAcked() {
				b.Fatal("transfer did not complete")
			}
		}
	}
	b.Run("transfer-off", func(b *testing.B) { transfer(b, false) })
	b.Run("transfer-traced", func(b *testing.B) { transfer(b, true) })
}

// netsimEngine and mptcpConn are small fixtures for the substrate
// ablations: a two-path WiFi/LTE-like network with the default
// scheduler on the compiled back-end.
func netsimEngine(seed int64) *netsim.Engine { return netsim.NewEngine(seed) }

func mptcpConn(eng *netsim.Engine, maxIter int, disableTSQ bool) *mptcp.Conn {
	conn := mptcp.NewConn(eng, mptcp.Config{
		MaxSchedIterations: maxIter,
		DisableTSQWake:     disableTSQ,
	})
	for i, d := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name:  fmt.Sprintf("p%d", i),
			Rate:  netsim.ConstantRate(3e6),
			Delay: d,
		})
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: fmt.Sprintf("p%d", i), Link: link}); err != nil {
			panic(err)
		}
	}
	conn.SetScheduler(core.MustLoad("minRTT", schedlib.MinRTT, core.BackendCompiled))
	return conn
}
