# ProgMP-Go development targets. Everything is stdlib-only and offline.

GO ?= go

.PHONY: all build test test-short race cover bench bench-record bench-gate experiments fmt vet lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Machine-readable perf baseline (see docs/OBSERVABILITY.md for the
# BENCH_*.json schema). bench-record refreshes the committed baseline
# on the machine of record; bench-gate measures a fresh run and fails
# on regression past the tolerances (allocs/op has none).
BENCH_BASELINE ?= BENCH_10.json

bench-record:
	$(GO) run ./cmd/progmp-bench -record $(BENCH_BASELINE)

bench-gate:
	$(GO) run ./cmd/progmp-bench -compare $(BENCH_BASELINE)

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/progmp-bench -exp all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Project-specific static analysis: the DSL admission gate over the
# scheduler corpus and shipped examples, then the Go invariant passes
# (hotpath / deterministic / epochsafe / conventions — see
# docs/ANALYSIS.md "Go-side invariant passes").
lint:
	$(GO) run ./cmd/progmp-vet -all examples/schedulers
	$(GO) run ./cmd/progmp-analyze ./...

clean:
	$(GO) clean ./...
