# ProgMP-Go development targets. Everything is stdlib-only and offline.

GO ?= go

.PHONY: all build test test-short race cover bench experiments fmt vet lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/progmp-bench -exp all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Project-specific static analysis: the DSL admission gate over the
# scheduler corpus and shipped examples, then the Go-convention passes.
lint:
	$(GO) run ./cmd/progmp-vet -all examples/schedulers
	$(GO) run ./tools/lint ./...

clean:
	$(GO) clean ./...
