package analyze

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Suite owns the file set, the type-checked packages and the
// directive facts collected across every package it has loaded.
// Facts are keyed by *types.Func / *types.TypeName, so the loader
// guarantees object identity: each module-internal package is
// type-checked exactly once and shared between importers.
type Suite struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // absolute module root directory

	std types.Importer // source importer for GOROOT packages
	// pkgs caches the pure (test-free) variant of each package —
	// what other packages see when they import it, exactly as the
	// compiler would. targets caches the analysis variant, which
	// additionally includes in-package _test.go files; keeping the
	// two apart avoids the import cycles test files would otherwise
	// introduce.
	pkgs     map[string]*Package
	targets  map[string]*Package
	loading  map[string]bool
	funcDirs map[*types.Func]Directives
	typeDirs map[*types.TypeName]Directives
}

// A Package is one type-checked package (primary files plus
// in-package _test.go files; an external foo_test package is loaded
// as its own Package with ExternalTest set).
type Package struct {
	Path         string
	Dir          string
	Files        []*ast.File
	Types        *types.Package
	Info         *types.Info
	ExternalTest bool

	fset *token.FileSet
	// suppress maps filename -> line -> pass names ("" = every pass)
	// covered by a //progmp:ignore comment on that line or the line
	// above the construct.
	suppress map[string]map[int]map[string]bool
}

func (p *Package) fileName(f *ast.File) string {
	return p.fset.Position(f.Package).Filename
}

// NewSuite creates a Suite rooted at the module containing dir.
func NewSuite(dir string) (*Suite, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Suite{
		Fset:     fset,
		Module:   module,
		Root:     root,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		targets:  map[string]*Package{},
		loading:  map[string]bool{},
		funcDirs: map[*types.Func]Directives{},
		typeDirs: map[*types.TypeName]Directives{},
	}, nil
}

// Load resolves patterns ("./...", directories, import paths) to
// packages and type-checks them. Each directory yields its primary
// package and, when present, the external _test package.
func (s *Suite) Load(patterns ...string) ([]*Package, error) {
	dirs, err := s.expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		path, err := s.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := s.loadTarget(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
		xtest, err := s.loadExternalTest(path, dir)
		if err != nil {
			return nil, err
		}
		if xtest != nil {
			out = append(out, xtest)
		}
	}
	return out, nil
}

// expandPatterns turns CLI arguments into module-relative directories
// holding Go files. "dir/..." walks recursively, skipping testdata,
// vendor, and hidden/underscore directories — same semantics the old
// tools/lint had.
func (s *Suite) expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if hasGoFiles(dir) && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = s.Root
			}
		}
		if strings.HasPrefix(pat, s.Module+"/") || pat == s.Module {
			pat = filepath.Join(s.Root, strings.TrimPrefix(pat, s.Module))
		}
		if !filepath.IsAbs(pat) {
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			pat = abs
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("pattern %q is not a directory", pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err = filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func (s *Suite) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(s.Root, dir)
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, s.Root)
	}
	if rel == "." {
		return s.Module, nil
	}
	return s.Module + "/" + filepath.ToSlash(rel), nil
}

func (s *Suite) dirForImportPath(path string) string {
	if path == s.Module {
		return s.Root
	}
	return filepath.Join(s.Root, filepath.FromSlash(strings.TrimPrefix(path, s.Module+"/")))
}

func (s *Suite) isModulePath(path string) bool {
	return path == s.Module || strings.HasPrefix(path, s.Module+"/")
}

// Import implements types.Importer: module-internal packages are
// loaded (and cached) by the suite itself; everything else is
// type-checked from GOROOT source by the stdlib source importer.
// The suite never sees third-party imports — the module has none,
// by the offline-build constraint.
func (s *Suite) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if s.isModulePath(path) {
		pkg, err := s.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return s.std.Import(path)
}

// loadPackage type-checks the pure variant of the package at the
// import path — non-test files only, the view importers get. Returns
// nil when the directory has no buildable non-test files.
func (s *Suite) loadPackage(path string) (*Package, error) {
	if pkg, ok := s.pkgs[path]; ok {
		return pkg, nil
	}
	if s.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	s.loading[path] = true
	defer delete(s.loading, path)

	dir := s.dirForImportPath(path)
	primary, _, _, err := s.splitDir(dir)
	if err != nil {
		return nil, err
	}
	if len(primary) == 0 {
		s.pkgs[path] = nil
		return nil, nil
	}
	pkg, err := s.check(path, dir, primary, false)
	if err != nil {
		return nil, err
	}
	s.pkgs[path] = pkg
	return pkg, nil
}

// loadTarget type-checks the analysis variant of the package: the
// pure files plus in-package _test.go files. When the package has no
// in-package tests this is the pure variant itself.
func (s *Suite) loadTarget(path string) (*Package, error) {
	if pkg, ok := s.targets[path]; ok {
		return pkg, nil
	}
	dir := s.dirForImportPath(path)
	primary, intest, _, err := s.splitDir(dir)
	if err != nil {
		return nil, err
	}
	if len(intest) == 0 || len(primary) == 0 {
		pkg, err := s.loadPackage(path)
		if err != nil {
			return nil, err
		}
		s.targets[path] = pkg
		return pkg, nil
	}
	// Make sure the pure variant exists first: imports from other
	// packages (including this package's own test files' transitive
	// imports) must resolve to it, not to this test-inclusive check.
	if _, err := s.loadPackage(path); err != nil {
		return nil, err
	}
	pkg, err := s.check(path, dir, append(append([]string{}, primary...), intest...), false)
	if err != nil {
		return nil, err
	}
	s.targets[path] = pkg
	return pkg, nil
}

// loadExternalTest type-checks the foo_test package of a directory,
// if any.
func (s *Suite) loadExternalTest(path, dir string) (*Package, error) {
	key := path + "_test"
	if pkg, ok := s.pkgs[key]; ok {
		return pkg, nil
	}
	_, _, xtest, err := s.splitDir(dir)
	if err != nil {
		return nil, err
	}
	if len(xtest) == 0 {
		s.pkgs[key] = nil
		return nil, nil
	}
	pkg, err := s.check(key, dir, xtest, true)
	if err != nil {
		return nil, err
	}
	s.pkgs[key] = pkg
	return pkg, nil
}

// splitDir lists the buildable files of dir, split into the pure
// package, its in-package _test.go files, and the external test
// package. Build constraints (//go:build, _GOOS suffixes) are
// honored via go/build, matching what the compiler would select.
func (s *Suite) splitDir(dir string) (primary, intest, xtest []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s/%s: %w", dir, name, err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var primaryName string
	for _, name := range names {
		full := filepath.Join(dir, name)
		pkgName, err := packageClause(full)
		if err != nil {
			return nil, nil, nil, err
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && strings.HasSuffix(pkgName, "_test") {
			xtest = append(xtest, full)
			continue
		}
		if primaryName == "" {
			primaryName = pkgName
		} else if pkgName != primaryName {
			return nil, nil, nil, fmt.Errorf("%s: conflicting package names %s and %s", dir, primaryName, pkgName)
		}
		if isTest {
			intest = append(intest, full)
		} else {
			primary = append(primary, full)
		}
	}
	return primary, intest, xtest, nil
}

func packageClause(file string) (string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

func (s *Suite) check(path, dir string, filenames []string, xtest bool) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(s.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return s.checkFiles(path, dir, files, xtest)
}

// CheckSource type-checks a synthetic package built from in-memory
// sources (filename -> source). Used by pass tests to analyze
// fixtures without touching the repository tree; fixtures may import
// module-internal packages.
func (s *Suite) CheckSource(path string, sources map[string]string) (*Package, error) {
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(s.Fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := s.checkFiles(path, s.Root, files, false)
	if err != nil {
		return nil, err
	}
	s.pkgs[path] = pkg
	return pkg, nil
}

func (s *Suite) checkFiles(path, dir string, files []*ast.File, xtest bool) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: s,
		Error: func(err error) {
			errs = append(errs, err)
		},
	}
	tpkg, _ := conf.Check(path, s.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	pkg := &Package{
		Path:         path,
		Dir:          dir,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		ExternalTest: xtest,
		fset:         s.Fset,
	}
	s.collectDirectives(pkg)
	pkg.suppress = collectSuppressions(s.Fset, files)
	return pkg, nil
}
