package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runEpochSafe enforces the RCU/epoch discipline on shared state:
//
//  1. Fields of a //progmp:epochshared type may only be written
//     through a pointer inside a function annotated //progmp:publish
//     (the serialized clone-and-publish path). Published snapshots
//     are immutable; any other pointer write is a data race with
//     lock-free readers. Writes to by-value copies are fine and are
//     not flagged.
//
//  2. A struct field must not mix sync/atomic access with plain
//     writes: if &x.f is passed to an atomic function anywhere in the
//     package, every plain write to f is flagged.
func runEpochSafe(p *Pass) {
	writes := map[*types.Var][]ast.Expr{} // plain writes per field
	atomics := map[*types.Var]bool{}      // fields used via sync/atomic

	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			inPublish := fn != nil && p.Suite.FuncDirectives(fn).Publish
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						p.checkSharedWrite(lhs, inPublish)
						if f := p.fieldOf(lhs); f != nil {
							writes[f] = append(writes[f], lhs)
						}
					}
				case *ast.IncDecStmt:
					p.checkSharedWrite(n.X, inPublish)
					if f := p.fieldOf(n.X); f != nil {
						writes[f] = append(writes[f], n.X)
					}
				case *ast.CallExpr:
					if f := p.atomicArgField(n); f != nil {
						atomics[f] = true
					}
				}
				return true
			})
		}
	}

	for f := range atomics {
		for _, w := range writes[f] {
			p.Reportf(w.Pos(), "field %s is accessed via sync/atomic elsewhere in this package; plain write races with it", f.Name())
		}
	}
}

// checkSharedWrite reports a pointer write into an epochshared type
// outside a publish function.
func (p *Pass) checkSharedWrite(lhs ast.Expr, inPublish bool) {
	tn := p.sharedWriteTarget(lhs)
	if tn == nil || inPublish {
		return
	}
	p.Reportf(lhs.Pos(), "write to epoch-shared %s outside a //progmp:publish function", tn.Name())
}

// sharedWriteTarget reports the //progmp:epochshared type a write to
// lhs would mutate through a pointer or slice alias, or nil if the
// write cannot reach shared state (e.g. a by-value copy).
func (p *Pass) sharedWriteTarget(lhs ast.Expr) *types.TypeName {
	info := p.Pkg.Info
	switch e := ast.Unparen(lhs).(type) {
	case *ast.StarExpr:
		// *ptr = v overwrites the pointee wholesale.
		if tn := p.epochSharedNamed(info.TypeOf(e)); tn != nil {
			return tn
		}
	case *ast.SelectorExpr:
		// base.f = v writes shared state when base is a pointer to
		// (or a chain rooted in a pointer to) an epochshared type.
		if t := info.TypeOf(e.X); t != nil {
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				if tn := p.epochSharedNamed(ptr.Elem()); tn != nil {
					return tn
				}
			}
		}
		return p.sharedWriteTarget(e.X)
	case *ast.IndexExpr:
		// sl[i] = v (or sl[i].f = v via the selector case above)
		// aliases shared backing when the element type is epochshared.
		if t := info.TypeOf(e.X); t != nil {
			var elem types.Type
			switch u := t.Underlying().(type) {
			case *types.Slice:
				elem = u.Elem()
			case *types.Array:
				elem = u.Elem()
			}
			if tn := p.epochSharedNamed(elem); tn != nil {
				return tn
			}
		}
		return p.sharedWriteTarget(e.X)
	}
	return nil
}

func (p *Pass) epochSharedNamed(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if p.Suite.TypeDirectives(tn).EpochShared {
		return tn
	}
	return nil
}

// fieldOf resolves lhs to a struct-field object, for the
// atomic-mixing check.
func (p *Pass) fieldOf(lhs ast.Expr) *types.Var {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// atomicArgField reports the struct field whose address is passed to
// a sync/atomic function in this call, if any.
func (p *Pass) atomicArgField(call *ast.CallExpr) *types.Var {
	kind, callee, _ := resolveCall(p.Pkg.Info, call)
	if kind != callStatic || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return nil
	}
	for _, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		if f := p.fieldOf(u.X); f != nil {
			return f
		}
	}
	return nil
}
