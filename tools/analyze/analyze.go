// Package analyze is the repository's type-aware static-analysis
// suite: the Go-side counterpart of internal/analysis (which verifies
// scheduler programs before admission). Where the DSL analyzer proves
// properties of the programmable layer, this package proves properties
// of the substrate beneath it — the invariants the runtime's
// correctness and performance story rest on but that were previously
// enforced only dynamically (benchmarks, soak tests):
//
//	hotpath        functions marked //progmp:hotpath must not contain
//	               allocation-inducing constructs, transitively through
//	               the package-level call graph, so the 0 allocs/op
//	               benchmark contract is a compile-time property.
//	deterministic  zones marked //progmp:deterministic must not reach
//	               wall clocks, global randomness, map iteration or
//	               GOMAXPROCS-dependent constructs — mechanizing the
//	               fleet shard-invariance contract (docs/FLEET.md).
//	epochsafe      types marked //progmp:epochshared (the xstate RCU
//	               snapshots) may only be written inside functions
//	               marked //progmp:publish, and a struct field must not
//	               mix sync/atomic access with plain access.
//	eventkind      obs.Event composite literals must set Kind.
//	metricname     metric names are dot-separated lower_snake.
//	metrickind     one metric name, one metric kind per package.
//
// The last three migrated here from tools/lint; they now resolve the
// obs types and Registry methods through go/types, so aliased
// receivers, wrapped constructors and named string constants are seen.
//
// The package is deliberately stdlib-only (go/ast, go/parser,
// go/types, go/importer) so it works in the offline build environment;
// module-internal imports are resolved by the loader itself and
// standard-library imports are type-checked from GOROOT source.
//
// Directive syntax, the pass catalogue and suppression comments are
// documented in docs/ANALYSIS.md ("Go-side invariant passes").
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Pass)
}

// An Analyzer is one named pass run over every requested package.
type Analyzer struct {
	Name string
	Doc  string
	// SkipTests exempts _test.go files (and external test packages)
	// from this pass.
	SkipTests bool
	Run       func(*Pass)
}

// Analyzers is the registry, in report order.
var Analyzers = []*Analyzer{
	{
		Name: "hotpath",
		Doc:  "//progmp:hotpath functions must be provably allocation-free",
		Run:  runHotpath,
	},
	{
		Name: "deterministic",
		Doc:  "//progmp:deterministic zones must not reach nondeterminism sources",
		Run:  runDeterministic,
	},
	{
		Name: "epochsafe",
		Doc:  "//progmp:epochshared state is written only in //progmp:publish functions",
		Run:  runEpochSafe,
	},
	{
		Name: "eventkind",
		Doc:  "obs.Event composite literals must set Kind explicitly",
		Run:  runEventKind,
	},
	{
		Name:      "metricname",
		Doc:       "metric names are dot-separated lower_snake components",
		Run:       runMetricName,
		SkipTests: true,
	},
	{
		Name:      "metrickind",
		Doc:       "one metric name, one metric kind per package",
		Run:       runMetricKind,
		SkipTests: true,
	},
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Suite    *Suite
	Pkg      *Package
	// Files are the files this pass inspects (test files removed when
	// the analyzer sets SkipTests).
	Files []*ast.File

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a suppression comment
// (//progmp:ignore) covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Suite.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Pass:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers (all of them when nil) over pkgs
// and returns the findings sorted by position.
func (s *Suite) Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	if analyzers == nil {
		analyzers = Analyzers
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.SkipTests && pkg.ExternalTest {
				continue
			}
			files := pkg.Files
			if a.SkipTests {
				files = pkg.nonTestFiles()
			}
			if len(files) == 0 {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Suite:    s,
				Pkg:      pkg,
				Files:    files,
				diags:    &diags,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Pass < diags[j].Pass
	})
	return diags
}

// nonTestFiles returns the package's files minus _test.go files.
func (p *Package) nonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !strings.HasSuffix(p.fileName(f), "_test.go") {
			out = append(out, f)
		}
	}
	return out
}
