package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// detBannedFuncs are ambient-nondeterminism sources a deterministic
// zone must never reach: wall clocks and scheduler-dependent timers,
// and GOMAXPROCS/host-shape probes.
var detBannedFuncs = map[string]string{
	"time.Now":           "reads the wall clock",
	"time.Since":         "reads the wall clock",
	"time.Until":         "reads the wall clock",
	"time.Sleep":         "depends on the runtime scheduler",
	"time.After":         "depends on the runtime scheduler",
	"time.AfterFunc":     "depends on the runtime scheduler",
	"time.Tick":          "depends on the runtime scheduler",
	"time.NewTimer":      "depends on the runtime scheduler",
	"time.NewTicker":     "depends on the runtime scheduler",
	"runtime.GOMAXPROCS": "output must not depend on core count",
	"runtime.NumCPU":     "output must not depend on core count",
	"runtime.NumGoroutine": "output must not depend on goroutine " +
		"scheduling",
}

// runDeterministic checks //progmp:deterministic zones: annotated
// functions and, transitively, their same-package callees must not
// reach wall clocks, globally-seeded randomness, map iteration, or
// scheduling-dependent constructs. Module-internal cross-package
// calls must target functions that are themselves annotated
// deterministic; standard-library calls outside the ban list are
// trusted. Dynamic and interface calls are trusted — the netsim
// event loop dispatches the workload through function values, and
// determinism there is the ordered heap plus the seeded RNG, both of
// which this pass verifies at the source.
func runDeterministic(p *Pass) {
	t := newTraversal(p)
	for _, root := range t.roots(func(d Directives) bool { return d.Deterministic }) {
		w := &detWalk{t: t, root: root}
		w.checkFunc(root)
	}
}

type detWalk struct {
	t    *traversal
	root *types.Func
}

func (w *detWalk) reportf(pos token.Pos, fn *types.Func, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if fn != w.root {
		msg += fmt.Sprintf(" (deterministic zone via %s)", w.root.Name())
	}
	w.t.pass.Reportf(pos, "%s", msg)
}

func (w *detWalk) checkFunc(fn *types.Func) {
	if w.t.visited[fn] {
		return
	}
	w.t.visited[fn] = true
	decl := w.t.decls[fn]
	if decl == nil {
		return
	}
	w.checkBody(fn, decl.Body)
}

func (w *detWalk) checkBody(fn *types.Func, body *ast.BlockStmt) {
	info := w.t.pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literals defined inside a deterministic zone are part
			// of it, wherever they end up being invoked.
			return true
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				if !w.t.pass.suppressedAt(n.Pos()) {
					w.reportf(n.Pos(), fn, "map iteration order is randomized per run")
				}
			}
			return true
		case *ast.SelectStmt:
			w.reportf(n.Pos(), fn, "select arbitration depends on the runtime scheduler")
			return true
		case *ast.GoStmt:
			w.reportf(n.Pos(), fn, "spawning a goroutine introduces scheduling nondeterminism")
			return true
		case *ast.CallExpr:
			w.checkCall(fn, n)
			return true
		}
		return true
	})
}

func (w *detWalk) checkCall(fn *types.Func, call *ast.CallExpr) {
	p := w.t.pass
	if p.suppressedAt(call.Pos()) {
		return
	}
	kind, callee, _ := resolveCall(p.Pkg.Info, call)
	if kind != callStatic {
		return
	}
	name := fullName(callee)
	if reason, banned := detBannedFuncs[name]; banned {
		w.reportf(call.Pos(), fn, "%s %s", name, reason)
		return
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	switch pkgPath {
	case "math/rand", "math/rand/v2":
		// Methods on an explicitly seeded *rand.Rand (and the
		// constructors that make one) are deterministic; the
		// package-level draws share a global seed.
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && callee.Name() != "New" && callee.Name() != "NewSource" &&
			callee.Name() != "NewPCG" && callee.Name() != "NewChaCha8" {
			w.reportf(call.Pos(), fn, "global %s.%s draws from the shared process-wide seed", pkgPath, callee.Name())
		}
		return
	case "crypto/rand":
		w.reportf(call.Pos(), fn, "crypto/rand is nondeterministic by construction")
		return
	}
	if p.Suite.FuncDirectives(callee).Deterministic {
		return
	}
	if callee.Pkg() == p.Pkg.Types {
		if _, ok := w.t.decls[callee]; ok {
			w.checkFunc(callee)
		}
		return
	}
	if p.Suite.isModulePath(pkgPath) {
		w.reportf(call.Pos(), fn, "call to %s leaves the deterministic zone (annotate it //progmp:deterministic or suppress with a reason)", describe(callee))
	}
	// Standard-library calls outside the ban list are trusted.
}
