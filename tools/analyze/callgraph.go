package analyze

import (
	"go/ast"
	"go/types"
)

// funcDecls indexes the package's top-level function declarations by
// their type-checker object, so traversal passes can walk into
// same-package callees.
func funcDecls(pkg *Package, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// callKind classifies a call expression.
type callKind int

const (
	callStatic     callKind = iota // resolved to a *types.Func
	callInterface                  // method call through an interface
	callDynamic                    // through a function value
	callBuiltin                    // len, append, make, ...
	callConversion                 // T(x)
)

// resolveCall classifies call and, for static and interface calls,
// returns the callee.
func resolveCall(info *types.Info, call *ast.CallExpr) (callKind, *types.Func, *types.Builtin) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return callConversion, nil, nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return callStatic, obj, nil
		case *types.Builtin:
			return callBuiltin, nil, obj
		}
		return callDynamic, nil, nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					return callInterface, fn, nil
				}
				return callStatic, fn, nil
			}
			return callDynamic, nil, nil // func-typed field
		}
		// Package-qualified call: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return callStatic, fn, nil
		}
		return callDynamic, nil, nil
	}
	return callDynamic, nil, nil
}

// fullName renders fn as a stable dotted name: "time.Now",
// "(*sync.Pool).Get", "(time.Duration).Seconds".
func fullName(fn *types.Func) string {
	return fn.FullName()
}

// propagation walks the bodies of directive-annotated root functions
// and, transitively, their same-package static callees. visit is
// called once per reachable function body; its return value is the
// list of same-package callees to continue into (the pass decides —
// e.g. hotpath stops at annotated callees because they are roots of
// their own traversal).
type traversal struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

func newTraversal(p *Pass) *traversal {
	return &traversal{
		pass:    p,
		decls:   funcDecls(p.Pkg, p.Pkg.Files),
		visited: map[*types.Func]bool{},
	}
}

// roots returns the pass's package functions annotated with the
// directive selected by pick, in file order.
func (t *traversal) roots(pick func(Directives) bool) []*types.Func {
	var out []*types.Func
	for _, file := range t.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := t.pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if pick(t.pass.Suite.FuncDirectives(fn)) {
				out = append(out, fn)
			}
		}
	}
	return out
}
