package analyze

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// The conventions passes migrated from tools/lint, now resolved
// through go/types: an aliased Registry receiver, a renamed obs
// import, a wrapped constructor returning *obs.Registry, or a metric
// name spelled as a named string constant are all seen — the old
// syntactic matcher keyed on the spelling "obs.Event" and ".Counter"
// and missed every one of those.

const obsPkgPath = "progmp/internal/obs"

// isObsEvent reports whether t is obs.Event, through any alias.
func isObsEvent(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath && obj.Name() == "Event"
}

func runEventKind(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || lit.Type == nil {
				return true
			}
			t := p.Pkg.Info.TypeOf(lit)
			if t == nil || !isObsEvent(t) {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					// Positional literal: Kind is set by position, but
					// the form is fragile against field reordering;
					// require keys.
					p.Reportf(lit.Pos(), "obs.Event literal uses positional fields; use Kind: ... form")
					return true
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
					return true
				}
			}
			p.Reportf(lit.Pos(), "obs.Event literal does not set Kind; a zero Kind records as NONE and defeats trace filtering")
			return true
		})
	}
}

// metricRegistrars are the obs.Registry constructor methods the
// metric passes govern, by method name.
var metricRegistrars = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// metricCalls visits every (*obs.Registry).Counter/Gauge/Histogram
// call whose name argument has a constant prefix, however the
// receiver or the name is spelled.
func metricCalls(p *Pass, f *ast.File, visit func(call *ast.CallExpr, method, name string, exact bool)) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		kind, callee, _ := resolveCall(p.Pkg.Info, call)
		if kind != callStatic || callee == nil || !metricRegistrars[callee.Name()] {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil ||
			named.Obj().Pkg().Path() != obsPkgPath || named.Obj().Name() != "Registry" {
			return true
		}
		name, exact, ok := stringPrefix(p.Pkg.Info, call.Args[0])
		if !ok {
			return true
		}
		visit(call, callee.Name(), name, exact)
		return true
	})
}

// stringPrefix extracts the constant prefix of a metric-name
// argument. With type info this covers named constants and constant
// folding, not just literals: a whole-expression constant is exact,
// and `constantPrefix + dynamicSuffix` yields the prefix (dynamic
// suffixes like subflow keys are fine — the namespace prefix is what
// the convention governs).
func stringPrefix(info *types.Info, e ast.Expr) (name string, exact, ok bool) {
	if tv, found := info.Types[e]; found && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true, true
	}
	if bin, isBin := ast.Unparen(e).(*ast.BinaryExpr); isBin && bin.Op == token.ADD {
		name, _, ok = stringPrefix(info, bin.X)
		return name, false, ok
	}
	return "", false, false
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*\.?$`)

func runMetricName(p *Pass) {
	for _, f := range p.Files {
		metricCalls(p, f, func(call *ast.CallExpr, method, name string, exact bool) {
			if !metricNameRE.MatchString(name) {
				p.Reportf(call.Args[0].Pos(),
					"metric name %q is not dot-separated lower_snake (want e.g. \"conn.pushes\")", name)
				return
			}
			if exact && !strings.Contains(name, ".") {
				p.Reportf(call.Args[0].Pos(),
					"metric name %q has no namespace; prefix it like \"conn.%s\"", name, name)
			}
		})
	}
}

func runMetricKind(p *Pass) {
	type firstUse struct {
		method string
		pos    token.Pos
	}
	seen := map[string]firstUse{}
	for _, f := range p.Files {
		metricCalls(p, f, func(call *ast.CallExpr, method, name string, exact bool) {
			// Concatenated names are not statically comparable; only
			// exact names participate in conflict detection.
			if !exact {
				return
			}
			if prev, ok := seen[name]; ok {
				if prev.method != method {
					p.Reportf(call.Pos(),
						"metric %q registered as %s here but as %s at %s; the second registration is a detached no-op",
						name, method, prev.method, p.Suite.Fset.Position(prev.pos))
				}
				return
			}
			seen[name] = firstUse{method: method, pos: call.Pos()}
		})
	}
}
