package analyze

import (
	"strings"
	"testing"
)

// runFixture type-checks src as a standalone module-internal package
// and runs the named passes over it, returning the findings.
func runFixture(t *testing.T, passes []string, src string) []Diagnostic {
	t.Helper()
	suite, err := NewSuite(".")
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	pkg, err := suite.CheckSource("progmp/internal/fixture", map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	var as []*Analyzer
	for _, name := range passes {
		a := AnalyzerByName(name)
		if a == nil {
			t.Fatalf("unknown analyzer %q", name)
		}
		as = append(as, a)
	}
	return suite.Run([]*Package{pkg}, as)
}

// expect asserts that exactly the wanted message fragments are
// reported, in order.
func expect(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(want), render(diags))
	}
	for i, frag := range want {
		if !strings.Contains(diags[i].Message, frag) {
			t.Errorf("finding %d = %q, want fragment %q", i, diags[i].Message, frag)
		}
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestHotpathDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "alloc constructs",
			src: `package fixture

type S struct{ xs []int }

//progmp:hotpath
func (s *S) Hot(n int) {
	s.xs = append(s.xs, n)
	m := make([]byte, n)
	_ = m
	p := new(int)
	_ = p
}
`,
			want: []string{"append may grow", "make allocates", "new allocates"},
		},
		{
			name: "callee propagation into unannotated same-package function",
			src: `package fixture

//progmp:hotpath
func Hot() { helper() }

func helper() { _ = map[int]int{} }
`,
			want: []string{"map literal allocates"},
		},
		{
			name: "interface boxing and closures",
			src: `package fixture

func sink(v any) { _ = v }

//progmp:hotpath
func Hot(n int) {
	sink(n)
	f := func() {}
	_ = f
}
`,
			want: []string{"boxes the value", "closure allocates"},
		},
		{
			name: "string concatenation and map write",
			src: `package fixture

type S struct{ m map[string]int }

//progmp:hotpath
func (s *S) Hot(a, b string) {
	s.m[a+b] = 1
}
`,
			want: []string{"map write may rehash", "string concatenation allocates"},
		},
		{
			name: "cross-package call needs annotation",
			src: `package fixture

import "strconv"

//progmp:hotpath
func Hot(n int) string { return strconv.Itoa(n) }
`,
			want: []string{"crosses a package boundary"},
		},
		{
			name: "suppression with reason silences one line",
			src: `package fixture

type S struct{ xs []int }

//progmp:hotpath
func (s *S) Hot(n int) {
	//progmp:ignore hotpath amortized: capacity retained
	s.xs = append(s.xs, n)
}
`,
			want: nil,
		},
		{
			name: "allowlisted time and atomic calls pass",
			src: `package fixture

import (
	"sync/atomic"
	"time"
)

type S struct{ n atomic.Int64 }

//progmp:hotpath
func (s *S) Hot() int64 {
	s.n.Add(time.Now().UnixNano())
	return s.n.Load()
}
`,
			want: nil,
		},
		{
			name: "callback literal passed as argument is walked inline",
			src: `package fixture

//progmp:hotpath
func each(xs []int, f func(int) bool) {
	for _, x := range xs {
		//progmp:ignore hotpath callback literal is checked inline at each call site
		if !f(x) {
			return
		}
	}
}

//progmp:hotpath
func Hot(xs []int) {
	n := 0
	each(xs, func(x int) bool { n += x; return true })
}
`,
			want: nil,
		},
		{
			name: "escaping callback literal inside argument is still flagged",
			src: `package fixture

//progmp:hotpath
func each(xs []int, f func(int) bool) {
	for _, x := range xs {
		//progmp:ignore hotpath callback literal is checked inline at each call site
		if !f(x) {
			return
		}
	}
}

//progmp:hotpath
func Hot(xs []int) {
	each(xs, func(x int) bool { return append(xs, x) != nil })
}
`,
			want: []string{"append may grow"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runFixture(t, []string{"hotpath"}, tc.src), tc.want...)
		})
	}
}

func TestDeterministicDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			// The seeded acceptance fixture: injecting a wall-clock
			// read into a //progmp:deterministic zone must fail the
			// analyzer (this is what CI's seeded-violation job pins).
			name: "time.Now in deterministic zone",
			src: `package fixture

import "time"

//progmp:deterministic
func Tick() int64 { return time.Now().UnixNano() }
`,
			want: []string{"time.Now"},
		},
		{
			name: "global math/rand draw",
			src: `package fixture

import "math/rand"

//progmp:deterministic
func Draw() int64 { return rand.Int63() }
`,
			want: []string{"math/rand"},
		},
		{
			name: "seeded rand.Rand methods pass",
			src: `package fixture

import "math/rand"

type S struct{ rng *rand.Rand }

//progmp:deterministic
func (s *S) Draw() int64 { return s.rng.Int63() }
`,
			want: nil,
		},
		{
			name: "map iteration, select, go",
			src: `package fixture

//progmp:deterministic
func Walk(m map[int]int, ch chan int) {
	for k := range m {
		_ = k
	}
	select {
	case <-ch:
	default:
	}
	go func() {}()
}
`,
			want: []string{"map iteration order", "select", "goroutine"},
		},
		{
			name: "GOMAXPROCS",
			src: `package fixture

import "runtime"

//progmp:deterministic
func Procs() int { return runtime.GOMAXPROCS(0) }
`,
			want: []string{"runtime.GOMAXPROCS"},
		},
		{
			name: "callee propagation same package",
			src: `package fixture

import "time"

//progmp:deterministic
func Zone() { helper() }

func helper() { _ = time.Now() }
`,
			want: []string{"time.Now"},
		},
		{
			name: "suppressed map range with reason",
			src: `package fixture

//progmp:deterministic
func Walk(m map[int]int) int {
	n := 0
	//progmp:ignore deterministic iteration order is invisible: result is a commutative sum
	for _, v := range m {
		n += v
	}
	return n
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runFixture(t, []string{"deterministic"}, tc.src), tc.want...)
		})
	}
}

func TestEpochSafeDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "write outside publish path",
			src: `package fixture

//progmp:epochshared
type Snap struct{ N int64 }

func Mutate(s *Snap) { s.N = 1 }
`,
			want: []string{"outside a //progmp:publish function"},
		},
		{
			name: "write inside publish passes",
			src: `package fixture

//progmp:epochshared
type Snap struct{ N int64 }

//progmp:publish
func Publish(s *Snap) { s.N = 1 }
`,
			want: nil,
		},
		{
			name: "write through nested pointer chain",
			src: `package fixture

//progmp:epochshared
type Snap struct{ Recs []Rec }

//progmp:epochshared
type Rec struct{ V int64 }

func Mutate(s *Snap) { s.Recs[0].V = 2 }
`,
			want: []string{"outside a //progmp:publish function"},
		},
		{
			name: "by-value copy is not a shared write",
			src: `package fixture

//progmp:epochshared
type Snap struct{ N int64 }

func Copy(s *Snap) Snap {
	c := *s
	c.N = 9
	return c
}
`,
			want: nil,
		},
		{
			name: "atomic and plain access mixed on one field",
			src: `package fixture

import "sync/atomic"

type S struct{ n int64 }

func Mixed(s *S) {
	atomic.AddInt64(&s.n, 1)
	s.n = 2
}
`,
			want: []string{"accessed via sync/atomic elsewhere"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runFixture(t, []string{"epochsafe"}, tc.src), tc.want...)
		})
	}
}

func TestConventionDiagnostics(t *testing.T) {
	cases := []struct {
		name   string
		passes []string
		src    string
		want   []string
	}{
		{
			name:   "event literal without Kind",
			passes: []string{"eventkind"},
			src: `package fixture

import "progmp/internal/obs"

func Mk() obs.Event { return obs.Event{At: 0, Seq: 1} }
`,
			want: []string{"does not set Kind"},
		},
		{
			name:   "positional event literal",
			passes: []string{"eventkind"},
			src: `package fixture

import "progmp/internal/obs"

func Mk() obs.Event { return obs.Event{0, 1, 0, 0, 0, 0, 0, obs.EvPop} }
`,
			want: []string{"positional fields"},
		},
		{
			name:   "bad metric name through a named constant",
			passes: []string{"metricname"},
			src: `package fixture

import "progmp/internal/obs"

const badName = "Fleet.Conns"

func Reg(r *obs.Registry) { r.Counter(badName) }
`,
			want: []string{"not dot-separated lower_snake"},
		},
		{
			name:   "same name two kinds",
			passes: []string{"metrickind"},
			src: `package fixture

import "progmp/internal/obs"

func Reg(r *obs.Registry) {
	r.Counter("fleet.conns")
	r.Gauge("fleet.conns")
}
`,
			want: []string{"registered as"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, runFixture(t, tc.passes, tc.src), tc.want...)
		})
	}
}

// TestRepositoryIsAnalyzeClean is the self-check: `go test ./tools/...`
// fails if any package in the module has an outstanding finding, so the
// tree cannot drift from the invariants between CI runs.
func TestRepositoryIsAnalyzeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo load is slow; skipped in -short")
	}
	suite, err := NewSuite(".")
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	pkgs, err := suite.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := suite.Run(pkgs, nil)
	if len(diags) > 0 {
		t.Errorf("repository has %d outstanding findings:\n%s", len(diags), render(diags))
	}
}
