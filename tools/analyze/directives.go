package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directives are the progmp invariant annotations a declaration can
// carry. They are written like compiler directives — a // comment
// with no space before the word — in the doc comment of a FuncDecl,
// an interface method, or a type declaration:
//
//	//progmp:hotpath        function must be allocation-free
//	//progmp:deterministic  function must avoid nondeterminism sources
//	//progmp:epochshared    type is RCU-published shared state
//	//progmp:publish        function is an epoch publish path (may
//	//                      write epochshared fields)
//
// On an interface method the directive is a proof obligation for
// every implementation and a grant for callers: a hot path may call
// through the interface, and each concrete implementation reachable
// by the analyzer must itself be annotated.
type Directives struct {
	Hotpath       bool
	Deterministic bool
	EpochShared   bool
	Publish       bool
}

func (d Directives) any() bool {
	return d.Hotpath || d.Deterministic || d.EpochShared || d.Publish
}

func parseDirectives(groups ...*ast.CommentGroup) Directives {
	var d Directives
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			switch strings.TrimSpace(strings.TrimPrefix(c.Text, "//progmp:")) {
			case c.Text: // no prefix
			case "hotpath":
				d.Hotpath = true
			case "deterministic":
				d.Deterministic = true
			case "epochshared":
				d.EpochShared = true
			case "publish":
				d.Publish = true
			}
		}
	}
	return d
}

// collectDirectives records the directive facts of one type-checked
// package into the suite-wide maps. It runs for every package the
// suite loads — including pure dependencies — so a target package's
// passes can see annotations on the packages it calls into.
func (s *Suite) collectDirectives(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				d := parseDirectives(decl.Doc)
				if !d.any() {
					continue
				}
				if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
					s.funcDirs[fn] = d
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					d := parseDirectives(decl.Doc, ts.Doc)
					if d.any() {
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							s.typeDirs[tn] = d
						}
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, method := range iface.Methods.List {
						md := parseDirectives(method.Doc, method.Comment)
						if !md.any() {
							continue
						}
						for _, name := range method.Names {
							if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
								s.funcDirs[fn] = md
							}
						}
					}
				}
			}
		}
	}
}

// FuncDirectives returns the directives on fn, if any.
func (s *Suite) FuncDirectives(fn *types.Func) Directives {
	return s.funcDirs[fn]
}

// TypeDirectives returns the directives on the named type, if any.
func (s *Suite) TypeDirectives(tn *types.TypeName) Directives {
	return s.typeDirs[tn]
}

// collectSuppressions indexes //progmp:ignore comments:
//
//	//progmp:ignore <pass>[,<pass>...] [reason]
//	//progmp:ignore * [reason]
//
// A suppression covers diagnostics reported on its own line and on
// the following line (for standalone comments above a statement).
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, "//progmp:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					passes := lines[line]
					if passes == nil {
						passes = map[string]bool{}
						lines[line] = passes
					}
					for _, name := range strings.Split(fields[0], ",") {
						if name == "*" {
							passes[""] = true
						} else {
							passes[name] = true
						}
					}
				}
			}
		}
	}
	return out
}

func (p *Package) suppressed(pass string, pos token.Position) bool {
	passes := p.suppress[pos.Filename][pos.Line]
	return passes[""] || passes[pass]
}

// suppressedAt reports whether a suppression for pass covers the
// given source position — used by traversal passes to prune both the
// diagnostic and the walk below a vouched-for call site.
func (p *Pass) suppressedAt(pos token.Pos) bool {
	return p.Pkg.suppressed(p.Analyzer.Name, p.Suite.Fset.Position(pos))
}
