package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathAllowPkgs are packages a hot path may call into freely:
// every exported function is allocation-free.
var hotpathAllowPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
}

// hotpathAllowFuncs are individually vetted allocation-free stdlib
// functions and methods hot paths are allowed to reach.
var hotpathAllowFuncs = map[string]bool{
	"time.Now":                     true,
	"time.Since":                   true,
	"(time.Time).Sub":              true,
	"(time.Time).UnixNano":         true,
	"(time.Duration).Nanoseconds":  true,
	"(time.Duration).Microseconds": true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Seconds":      true,
	"(*sync.Pool).Get":             true,
	"(*sync.Pool).Put":             true,
	"(*sync.Mutex).Lock":           true,
	"(*sync.Mutex).Unlock":         true,
	"(*sync.RWMutex).RLock":        true,
	"(*sync.RWMutex).RUnlock":      true,
	"(*sync.RWMutex).Lock":         true,
	"(*sync.RWMutex).Unlock":       true,
}

// runHotpath proves that every //progmp:hotpath function in the
// package contains no allocation-inducing construct, walking
// transitively into same-package callees. Cross-package calls must
// target a function that is itself annotated, an allowlisted stdlib
// function, or carry a //progmp:ignore suppression explaining why the
// call is outside the zero-alloc contract.
func runHotpath(p *Pass) {
	t := newTraversal(p)
	for _, root := range t.roots(func(d Directives) bool { return d.Hotpath }) {
		h := &hotpathWalk{t: t, root: root}
		h.checkFunc(root)
	}
}

type hotpathWalk struct {
	t    *traversal
	root *types.Func
}

func (h *hotpathWalk) reportf(pos token.Pos, fn *types.Func, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if fn != h.root {
		msg += fmt.Sprintf(" (hot path via %s)", h.root.Name())
	}
	h.t.pass.Reportf(pos, "%s", msg)
}

func (h *hotpathWalk) checkFunc(fn *types.Func) {
	if h.t.visited[fn] {
		return
	}
	h.t.visited[fn] = true
	decl := h.t.decls[fn]
	if decl == nil {
		return
	}
	h.checkBody(fn, decl.Body)
}

// checkBody walks one function body. Function literals that are
// invoked on the spot (called or deferred) are walked inline as part
// of the enclosing function; a literal used as a value is a closure
// allocation and is reported instead of walked.
func (h *hotpathWalk) checkBody(fn *types.Func, body *ast.BlockStmt) {
	info := h.t.pass.Pkg.Info
	inline := map[*ast.FuncLit]bool{} // literals invoked on the spot
	funs := map[ast.Expr]bool{}       // expressions in call-operand position
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if inline[n] {
				return true
			}
			h.reportf(n.Pos(), fn, "function literal escapes: closure allocates")
			return false
		case *ast.GoStmt:
			h.reportf(n.Pos(), fn, "go statement allocates a goroutine")
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				inline[lit] = true // already reported; don't re-flag as escape
			}
			funs[ast.Unparen(n.Call.Fun)] = true
			return true
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				inline[lit] = true
			}
			funs[ast.Unparen(n.Call.Fun)] = true
			return true
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				inline[lit] = true
			}
			// A literal passed directly as a call argument is the
			// non-escaping callback pattern (Queue.All et al.): its
			// body is checked inline here, and the invocation inside
			// the callee is vouched for at the callee. Literals that
			// are stored are still reported as escapes.
			for _, arg := range n.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					inline[lit] = true
				}
			}
			funs[ast.Unparen(n.Fun)] = true
			h.checkCall(fn, n)
			return true
		case *ast.SelectorExpr:
			if funs[n] {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				h.reportf(n.Pos(), fn, "method value %s.%s allocates a closure", types.ExprString(n.X), n.Sel.Name)
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					h.reportf(n.Pos(), fn, "address of composite literal may be heap-allocated")
					return false
				}
			}
			return true
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				h.reportf(n.Pos(), fn, "map literal allocates")
			case *types.Slice:
				h.reportf(n.Pos(), fn, "slice literal allocates")
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && info.Types[n].Value == nil {
				h.reportf(n.Pos(), fn, "non-constant string concatenation allocates")
			}
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				h.checkMapWrite(fn, lhs)
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				h.reportf(n.Pos(), fn, "string += allocates")
			}
			h.checkAssignConversions(fn, n)
			return true
		case *ast.IncDecStmt:
			h.checkMapWrite(fn, n.X)
			return true
		case *ast.ReturnStmt:
			h.checkReturnConversions(fn, n)
			return true
		}
		return true
	})
}

func (h *hotpathWalk) checkMapWrite(fn *types.Func, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if _, ok := h.t.pass.Pkg.Info.TypeOf(idx.X).Underlying().(*types.Map); ok {
		h.reportf(lhs.Pos(), fn, "map write may rehash and allocate")
	}
}

// checkCall handles builtins, conversions, implicit interface
// conversions at argument positions, variadic slices, and callee
// admissibility (annotated / allowlisted / same-package traversal).
func (h *hotpathWalk) checkCall(fn *types.Func, call *ast.CallExpr) {
	p := h.t.pass
	info := p.Pkg.Info
	if p.suppressedAt(call.Pos()) {
		return // vouched-for call: skip both diagnostic and traversal
	}
	kind, callee, builtin := resolveCall(info, call)
	switch kind {
	case callBuiltin:
		switch builtin.Name() {
		case "append":
			h.reportf(call.Pos(), fn, "append may grow the backing array")
		case "make":
			h.reportf(call.Pos(), fn, "make allocates")
		case "new":
			h.reportf(call.Pos(), fn, "new allocates")
		case "panic":
			h.reportf(call.Pos(), fn, "panic allocates and unwinds")
		}
		return
	case callConversion:
		h.checkConversion(fn, call)
		return
	}

	// Implicit interface conversions and the variadic slice.
	if sigT, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		h.checkArgConversions(fn, call, sigT)
	}

	switch kind {
	case callDynamic:
		if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			return // literal invoked on the spot: its body is walked inline
		}
		h.reportf(call.Pos(), fn, "dynamic call through a function value cannot be proven allocation-free")
	case callInterface:
		if !p.Suite.FuncDirectives(callee).Hotpath {
			h.reportf(call.Pos(), fn, "interface method %s is not annotated //progmp:hotpath", fullName(callee))
		}
	case callStatic:
		h.checkStaticCallee(fn, call, callee)
	}
}

func (h *hotpathWalk) checkStaticCallee(fn *types.Func, call *ast.CallExpr, callee *types.Func) {
	p := h.t.pass
	if p.Suite.FuncDirectives(callee).Hotpath {
		return // a root of its own hotpath traversal
	}
	if callee.Pkg() == p.Pkg.Types {
		if _, ok := h.t.decls[callee]; ok {
			h.checkFunc(callee)
			return
		}
		h.reportf(call.Pos(), fn, "call to %s has no body to analyze", callee.Name())
		return
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	if hotpathAllowPkgs[pkgPath] || hotpathAllowFuncs[fullName(callee)] {
		return
	}
	h.reportf(call.Pos(), fn, "call to %s crosses a package boundary without //progmp:hotpath", fullName(callee))
}

// checkConversion flags explicit conversions that allocate: string
// materialization and boxing into interfaces.
func (h *hotpathWalk) checkConversion(fn *types.Func, call *ast.CallExpr) {
	info := h.t.pass.Pkg.Info
	if len(call.Args) != 1 {
		return
	}
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	switch {
	case isString(to) && !isString(from) && info.Types[call].Value == nil:
		h.reportf(call.Pos(), fn, "conversion to string allocates")
	case isByteOrRuneSlice(to) && isString(from):
		h.reportf(call.Pos(), fn, "string to slice conversion allocates")
	default:
		h.checkIfaceConv(fn, call.Pos(), to, from, info.Types[call.Args[0]])
	}
}

func (h *hotpathWalk) checkArgConversions(fn *types.Func, call *ast.CallExpr, sig *types.Signature) {
	info := h.t.pass.Pkg.Info
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				continue // spread of an existing slice
			}
			param = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			param = params.At(i).Type()
		default:
			continue
		}
		h.checkIfaceConv(fn, arg.Pos(), param, info.TypeOf(arg), info.Types[arg])
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= n {
		h.reportf(call.Pos(), fn, "variadic call allocates the argument slice")
	}
}

func (h *hotpathWalk) checkAssignConversions(fn *types.Func, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	info := h.t.pass.Pkg.Info
	for i, rhs := range n.Rhs {
		h.checkIfaceConv(fn, rhs.Pos(), info.TypeOf(n.Lhs[i]), info.TypeOf(rhs), info.Types[rhs])
	}
}

func (h *hotpathWalk) checkReturnConversions(fn *types.Func, ret *ast.ReturnStmt) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	info := h.t.pass.Pkg.Info
	for i, res := range ret.Results {
		h.checkIfaceConv(fn, res.Pos(), sig.Results().At(i).Type(), info.TypeOf(res), info.Types[res])
	}
}

// checkIfaceConv reports a conversion of a non-pointer-shaped value
// into an interface — the boxing allocation.
func (h *hotpathWalk) checkIfaceConv(fn *types.Func, pos token.Pos, to, from types.Type, fromTV types.TypeAndValue) {
	if to == nil || from == nil {
		return
	}
	if !types.IsInterface(to) || types.IsInterface(from) {
		return
	}
	if fromTV.IsNil() || pointerShaped(from) {
		return
	}
	h.reportf(pos, fn, "conversion of %s to %s boxes the value (allocates)", from, to)
}

// pointerShaped reports whether values of t are represented as a
// single pointer word, so interface conversion stores them directly
// without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// describe renders a function for messages without the module prefix
// noise.
func describe(fn *types.Func) string {
	return strings.ReplaceAll(fullName(fn), "progmp/internal/", "")
}
