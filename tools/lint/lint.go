// Command lint runs the repository's project-specific Go checks: the
// conventions go vet cannot know about because they are ProgMP-Go
// idioms, not Go idioms. It is deliberately stdlib-only (go/ast,
// go/parser, go/token) so it works in the offline build environment;
// the passes are syntactic, package-at-a-time, in the shape of
// golang.org/x/tools/go/analysis without the dependency.
//
// Usage:
//
//	go run ./tools/lint ./...
//	go run ./tools/lint internal/obs internal/core
//
// Each argument is a directory (one package) or a dir/... pattern
// (every package below it). Exit status is 1 when any diagnostic is
// reported, 2 on usage or parse errors.
//
// The passes:
//
//	eventkind   obs.Event composite literals must set Kind explicitly.
//	            A zero-Kind event records as NONE and silently defeats
//	            trace-kind filtering, so the field is required even
//	            when other fields identify the site.
//	metricname  Metric names passed to Counter/Gauge/Histogram must be
//	            lower_snake components joined by dots with at least one
//	            dot (namespace.metric), matching the names the ctl
//	            metrics verb and progmp-trace print.
//	metrickind  The same metric name must not be registered as more
//	            than one kind in a package: the obs registry resolves
//	            such conflicts at runtime by returning a detached
//	            metric, so the second registration is a silent no-op.
//
// Test files are exempt from the metric passes (tests intentionally
// exercise conflicts) but not from eventkind.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A Pass is one analyzer's view of one package: its parsed files and a
// sink for diagnostics.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	report func(pos token.Pos, format string, args ...any)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, format, args...)
}

// An Analyzer is one named check run over every package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// SkipTests exempts _test.go files from this pass.
	SkipTests bool
}

// analyzers is the registry, in report order.
var analyzers = []*Analyzer{
	{
		Name: "eventkind",
		Doc:  "obs.Event composite literals must set Kind explicitly",
		Run:  runEventKind,
	},
	{
		Name:      "metricname",
		Doc:       "metric names are dot-separated lower_snake components",
		Run:       runMetricName,
		SkipTests: true,
	},
	{
		Name:      "metrickind",
		Doc:       "one metric name, one metric kind per package",
		Run:       runMetricKind,
		SkipTests: true,
	},
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lint [dir|dir/... ...]")
		return 2
	}
	dirs, err := expandArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		return 2
	}
	findings := 0
	for _, dir := range dirs {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %s: %v\n", dir, err)
			return 2
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// expandArgs resolves dir and dir/... arguments into the sorted list of
// directories that contain Go files.
func expandArgs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if root == "." || root == "" {
			root = "."
		}
		if !recursive {
			info, err := os.Stat(root)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// lintDir parses the package in dir and runs every analyzer over it,
// printing diagnostics. It returns the number of findings.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	findings := 0
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pkg := pkgs[name]
		var files, nonTest []*ast.File
		fileNames := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			fileNames = append(fileNames, fname)
		}
		sort.Strings(fileNames)
		for _, fname := range fileNames {
			f := pkg.Files[fname]
			files = append(files, f)
			if !strings.HasSuffix(fname, "_test.go") {
				nonTest = append(nonTest, f)
			}
		}
		for _, a := range analyzers {
			in := files
			if a.SkipTests {
				in = nonTest
			}
			pass := &Pass{
				Fset:  fset,
				Files: in,
				report: func(pos token.Pos, format string, args ...any) {
					findings++
					fmt.Printf("%s: %s [%s]\n", fset.Position(pos), fmt.Sprintf(format, args...), a.Name)
				},
			}
			a.Run(pass)
		}
	}
	return findings, nil
}

// isEventLiteral reports whether lit composes an obs.Event (spelled
// obs.Event outside the package or Event inside it). Purely syntactic:
// a same-named type in an unrelated package would also match, which is
// acceptable for a project-local lint.
func isEventLiteral(lit *ast.CompositeLit) bool {
	switch t := lit.Type.(type) {
	case *ast.Ident:
		return t.Name == "Event"
	case *ast.SelectorExpr:
		x, ok := t.X.(*ast.Ident)
		return ok && x.Name == "obs" && t.Sel.Name == "Event"
	}
	return false
}

func runEventKind(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isEventLiteral(lit) {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					// Positional literal: Kind is set by position, but the
					// form is fragile against field reordering; require keys.
					pass.Reportf(lit.Pos(), "obs.Event literal uses positional fields; use Kind: ... form")
					return true
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
					return true
				}
			}
			pass.Reportf(lit.Pos(), "obs.Event literal does not set Kind; a zero Kind records as NONE and defeats trace filtering")
			return true
		})
	}
}

// metricCalls visits every Counter/Gauge/Histogram method call whose
// single argument includes a string literal, yielding the call, the
// method name, the literal (unquoted), and whether the literal is the
// whole name (exact) or just the constant prefix of a concatenation.
func metricCalls(f *ast.File, visit func(call *ast.CallExpr, method, name string, exact bool)) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		if method != "Counter" && method != "Gauge" && method != "Histogram" {
			return true
		}
		name, exact, ok := stringPrefix(call.Args[0])
		if !ok {
			return true
		}
		visit(call, method, name, exact)
		return true
	})
}

// stringPrefix extracts the constant prefix of a metric-name argument:
// a plain string literal (exact), or the left side of a `"lit" + expr`
// concatenation (dynamic suffixes like subflow keys are fine — the
// namespace prefix is what the convention governs).
func stringPrefix(e ast.Expr) (name string, exact, ok bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false, false
		}
		s, err := strconv.Unquote(e.Value)
		if err != nil {
			return "", false, false
		}
		return s, true, true
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			name, _, ok = stringPrefix(e.X)
			return name, false, ok
		}
	}
	return "", false, false
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*\.?$`)

func runMetricName(pass *Pass) {
	for _, f := range pass.Files {
		metricCalls(f, func(call *ast.CallExpr, method, name string, exact bool) {
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not dot-separated lower_snake (want e.g. \"conn.pushes\")", name)
				return
			}
			if exact && !strings.Contains(name, ".") {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q has no namespace; prefix it like \"conn.%s\"", name, name)
			}
		})
	}
}

func runMetricKind(pass *Pass) {
	type firstUse struct {
		method string
		pos    token.Pos
	}
	seen := map[string]firstUse{}
	for _, f := range pass.Files {
		metricCalls(f, func(call *ast.CallExpr, method, name string, exact bool) {
			// Concatenated names are not statically comparable; only exact
			// literals participate in conflict detection.
			if !exact {
				return
			}
			if prev, ok := seen[name]; ok {
				if prev.method != method {
					pass.Reportf(call.Pos(),
						"metric %q registered as %s here but as %s at %s; the second registration is a detached no-op",
						name, method, prev.method, pass.Fset.Position(prev.pos))
				}
				return
			}
			seen[name] = firstUse{method: method, pos: call.Pos()}
		})
	}
}
