package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runPass parses src as one file and runs the named analyzer over it,
// returning the diagnostic messages.
func runPass(t *testing.T, name, src string) []string {
	t.Helper()
	var a *Analyzer
	for _, cand := range analyzers {
		if cand.Name == name {
			a = cand
		}
	}
	if a == nil {
		t.Fatalf("no analyzer %q", name)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var got []string
	pass := &Pass{
		Fset:  fset,
		Files: []*ast.File{f},
		report: func(pos token.Pos, format string, args ...any) {
			got = append(got, fset.Position(pos).String()+": "+fmt.Sprintf(format, args...))
		},
	}
	a.Run(pass)
	return got
}

func TestEventKindPass(t *testing.T) {
	src := `package p
import "progmp/internal/obs"
func f(tr *obs.Tracer) {
	tr.Record(obs.Event{Kind: obs.EvPush, Seq: 1}) // ok
	tr.Record(obs.Event{Seq: 1})                   // missing Kind
	tr.Record(obs.Event{})                         // empty: missing Kind
	_ = obs.Snapshot{}                             // unrelated literal: ok
}`
	got := runPass(t, "eventkind", src)
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if !strings.Contains(d, "Kind") {
			t.Errorf("diagnostic should name the Kind field: %s", d)
		}
	}
}

func TestEventKindInsidePackage(t *testing.T) {
	src := `package obs
func f(tr *Tracer) {
	tr.Record(Event{Kind: EvPush}) // ok
	tr.Record(Event{Seq: 3})       // missing Kind
}`
	if got := runPass(t, "eventkind", src); len(got) != 1 {
		t.Fatalf("got %v, want one diagnostic", got)
	}
}

func TestMetricNamePass(t *testing.T) {
	src := `package p
func f(reg *Registry, key string) {
	reg.Counter("conn.pushes")        // ok
	reg.Gauge("guard.state")          // ok
	reg.Counter("sbf." + key + ".x")  // ok: prefix matches, suffix dynamic
	reg.Counter("Conn.Pushes")        // bad case
	reg.Counter("pushes")             // no namespace
	reg.Histogram("conn..oops")       // empty component
}`
	got := runPass(t, "metricname", src)
	if len(got) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(got), got)
	}
}

func TestMetricKindPass(t *testing.T) {
	src := `package p
func f(reg *Registry, key string) {
	reg.Counter("conn.pushes")
	reg.Counter("conn.pushes")       // same kind: ok
	reg.Gauge("conn.pushes")         // conflict
	reg.Counter("sbf." + key)        // concatenated: exempt
	reg.Histogram("sbf." + key)      // concatenated: exempt
}`
	got := runPass(t, "metrickind", src)
	if len(got) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0], "conn.pushes") {
		t.Errorf("diagnostic should name the metric: %s", got[0])
	}
}

func TestLintDirSkipsTestsForMetricPasses(t *testing.T) {
	dir := t.TempDir()
	lib := `package p
type R struct{}
func (R) Counter(string) {}
func (R) Gauge(string) {}
`
	test := `package p
func f(reg R) {
	reg.Counter("x") // metricname violation, but in a test file
	reg.Gauge("x")   // metrickind violation, but in a test file
}`
	if err := os.WriteFile(filepath.Join(dir, "lib.go"), []byte(lib), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lib_test.go"), []byte(test), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("test files should be exempt from metric passes; got %d findings", n)
	}
}

func TestRepoIsLintClean(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("module root not found")
	}
	dirs, err := expandArgs([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, dir := range dirs {
		n, err := lintDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		total += n
	}
	if total != 0 {
		t.Fatalf("repository has %d lint finding(s); run `go run ./tools/lint ./...`", total)
	}
}
