// HTTP/2: the content-aware page load of §5.5 (Fig. 14). A web server
// annotates each packet with its content class (dependency info /
// required / deferrable) through the per-packet scheduling intent; the
// HTTP/2-aware scheduler resolves third-party dependencies as early as
// possible while keeping deferrable bytes off the metered LTE path.
package main

import (
	"fmt"
	"log"
	"time"

	"progmp"
	"progmp/internal/http2sim"
)

func main() {
	page := http2sim.DefaultPage()
	fmt.Printf("page: %d bytes total, %d dependency, %d required, %d deferrable\n\n",
		page.TotalBytes(),
		page.ClassBytes(http2sim.ClassDependency),
		page.ClassBytes(http2sim.ClassRequired),
		page.ClassBytes(http2sim.ClassDeferrable))

	fmt.Printf("%-12s %16s %14s %12s %10s\n", "scheduler", "deps retrieved", "initial page", "full load", "lte KB")
	for _, name := range []string{"minRTT", "http2Aware"} {
		m, lteBytes, err := loadPage(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %16v %14v %12v %10.1f\n",
			name,
			m.DependencyRetrieved.Round(time.Millisecond),
			m.InitialPage.Round(time.Millisecond),
			m.FullLoad.Round(time.Millisecond),
			float64(lteBytes)/1024)
	}
	fmt.Println("\nthe aware scheduler preserves the initial page while cutting metered usage")
}

func loadPage(scheduler string) (http2sim.Metrics, int64, error) {
	net := progmp.NewNetwork(5)
	// The preference flag only means something to the aware scheduler;
	// the default baseline uses both subflows (as in the paper).
	lteBackup := scheduler != "minRTT"
	conn, err := net.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 3e6, OneWayDelay: 10 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 6e6, OneWayDelay: 20 * time.Millisecond, Backup: lteBackup},
	)
	if err != nil {
		return http2sim.Metrics{}, 0, err
	}
	sched, err := progmp.LoadScheduler(scheduler, progmp.Schedulers[scheduler])
	if err != nil {
		return http2sim.Metrics{}, 0, err
	}
	conn.SetScheduler(sched)

	page := http2sim.DefaultPage()
	browser := http2sim.NewBrowser(conn.Inner(), page)
	net.At(0, func() { http2sim.Server{Page: page}.Respond(conn.Inner()) })
	net.Run(60 * time.Second)
	return browser.Metrics(), conn.Subflows()[1].BytesSent, nil
}
