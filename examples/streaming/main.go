// Streaming: the paper's motivating scenario (Fig. 1 / Fig. 13). An
// interactive stream rises from 1 MB/s to 4 MB/s at t = 6 s over
// fluctuating WiFi and metered LTE. The application keeps the TAP
// scheduler's target-throughput register in sync with the bitrate, so
// LTE carries only the leftover the WiFi path cannot sustain.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"progmp"
)

const (
	lowRate  = 1 << 20 // 1 MB/s
	highRate = 4 << 20 // 4 MB/s
	switchAt = 6 * time.Second
	duration = 16 * time.Second
	tick     = 100 * time.Millisecond
)

func main() {
	net := progmp.NewNetwork(3)

	// WiFi fluctuates around 3 MB/s; LTE is fast but metered.
	wifiRate := func(at time.Duration) float64 {
		return 3e6 + 0.7e6*math.Sin(2*math.Pi*float64(at)/float64(2*time.Second))
	}
	conn, err := net.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateFn: wifiRate, OneWayDelay: 5 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := progmp.LoadScheduler("tap", progmp.Schedulers["tap"])
	if err != nil {
		log.Fatal(err)
	}
	conn.SetScheduler(sched)

	var delivered int64
	conn.OnDeliver(func(_ int64, size int, _ time.Duration) { delivered += int64(size) })

	// The application: push a bitrate-worth of data every 100 ms and
	// signal the current target to the scheduler through R1.
	for at := time.Duration(0); at < duration; at += tick {
		at := at
		net.At(at, func() {
			rate := lowRate
			if at >= switchAt {
				rate = highRate
			}
			conn.SetRegister(progmp.R1, int64(rate))
			conn.Send(rate / int(time.Second/tick))
		})
	}

	// Report the per-second split between the paths.
	var lastWiFi, lastLTE, lastDelivered int64
	fmt.Printf("%6s %12s %12s %12s %10s\n", "t", "wifi MB/s", "lte MB/s", "goodput", "target")
	for at := time.Second; at <= duration; at += time.Second {
		at := at
		net.At(at, func() {
			s := conn.Subflows()
			target := lowRate
			if at > switchAt {
				target = highRate
			}
			fmt.Printf("%6v %12.2f %12.2f %12.2f %10.1f\n",
				at,
				float64(s[0].BytesSent-lastWiFi)/1e6,
				float64(s[1].BytesSent-lastLTE)/1e6,
				float64(delivered-lastDelivered)/1e6,
				float64(target)/1e6)
			lastWiFi, lastLTE, lastDelivered = s[0].BytesSent, s[1].BytesSent, delivered
		})
	}
	net.Run(duration + time.Second)

	s := conn.Subflows()
	fmt.Printf("\ntotals: wifi %.2f MB, lte %.2f MB (metered usage minimized while the target holds)\n",
		float64(s[0].BytesSent)/1e6, float64(s[1].BytesSent)/1e6)
}
