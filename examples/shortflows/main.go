// Shortflows: application signaling for flow-completion-time
// optimization (§5.3, Fig. 12). A database-style client sends short
// responses over heterogeneous subflows and signals the end of each
// flow; the Compensating scheduler then retransmits still-in-flight
// packets across subflows so the slow path's RTT no longer dominates
// the tail.
package main

import (
	"fmt"
	"log"
	"time"

	"progmp"
)

const (
	flowSize = 24 << 10
	warmup   = 500 * time.Millisecond
)

func main() {
	fmt.Printf("%-14s", "rtt ratio")
	ratios := []float64{1, 2, 4, 6, 8}
	for _, r := range ratios {
		fmt.Printf(" %8.0fx", r)
	}
	fmt.Println()
	for _, scheduler := range []string{"minRTT", "compensating", "selectiveCompensation"} {
		fmt.Printf("%-14.14s", scheduler)
		for _, ratio := range ratios {
			fct, err := shortFlow(scheduler, ratio)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.1fms", float64(fct.Microseconds())/1000)
		}
		fmt.Println()
	}
	fmt.Println("\nthe end-of-flow signal lets Compensating retain the FCT under skewed RTT ratios")
}

func shortFlow(scheduler string, ratio float64) (time.Duration, error) {
	net := progmp.NewNetwork(11)
	fast := 10 * time.Millisecond
	conn, err := net.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "fast", RateBps: 8e6, OneWayDelay: fast},
		progmp.Path{Name: "slow", RateBps: 8e6, OneWayDelay: time.Duration(float64(fast) * ratio)},
	)
	if err != nil {
		return 0, err
	}
	sched, err := progmp.LoadScheduler(scheduler, progmp.Schedulers[scheduler])
	if err != nil {
		return 0, err
	}
	conn.SetScheduler(sched)
	conn.SetRegister(progmp.R3, 20) // selective threshold: ratio 2.0

	var fct time.Duration
	var got int64
	conn.OnDeliver(func(_ int64, size int, at time.Duration) {
		got += int64(size)
		if got >= flowSize && fct == 0 {
			fct = at - warmup
		}
	})
	// Warm up the handshakes, then send the response and signal its
	// end through R2 — the single piece of application information the
	// Compensating scheduler needs.
	net.At(warmup, func() {
		conn.Send(flowSize)
		conn.SetRegister(progmp.R2, 1)
	})
	net.Run(warmup + 30*time.Second)
	if fct == 0 {
		return 0, fmt.Errorf("%s at ratio %.1f did not complete", scheduler, ratio)
	}
	return fct, nil
}
