// Redundancy: authoring an application-defined scheduler from scratch.
// This example writes a custom ProgMP scheduler inline — a redundant
// scheduler that duplicates only the application's high-priority
// packets (intent 1) and schedules everything else on the fastest
// path — and compares it against the built-in corpus on a lossy
// two-path network.
package main

import (
	"fmt"
	"log"
	"time"

	"progmp"
)

// prioRedundant is an application-defined scheduler: packets whose
// intent (PROP) is 1 go redundantly on every available subflow; other
// packets use the minimum-RTT strategy. Note the FILTER/MIN pipeline,
// the per-packet property access, and that the only side effects are
// PUSH/DROP — everything the type checker enforces statically.
const prioRedundant = `
VAR avail = SUBFLOWS.FILTER(sbf => !sbf.LOSSY
    AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY AND !avail.EMPTY) {
    IF (Q.TOP.PROP == 1) {
        FOREACH (VAR sbf IN avail) {
            sbf.PUSH(Q.TOP);
        }
        DROP(Q.POP());
    } ELSE {
        avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }
}
`

func main() {
	// Static checking catches scheduler bugs before deployment.
	if err := progmp.CheckScheduler(prioRedundant); err != nil {
		log.Fatalf("scheduler does not type-check: %v", err)
	}
	fmt.Println("custom scheduler type-checks; bytecode:")
	asm, err := progmp.Disassemble(prioRedundant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instructions\n\n", len(splitLines(asm)))

	fmt.Printf("%-16s %14s %14s %12s\n", "scheduler", "prio p95", "bulk p95", "wire bytes")
	for _, run := range []struct {
		name string
		src  string
	}{
		{"minRTT", progmp.Schedulers["minRTT"]},
		{"redundant", progmp.Schedulers["redundant"]},
		{"prioRedundant", prioRedundant},
	} {
		prio, bulk, wire, err := measure(run.name, run.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %14v %14v %12d\n", run.name, prio.Round(time.Millisecond), bulk.Round(time.Millisecond), wire)
	}
	fmt.Println("\nselective redundancy protects the latency-critical packets at a fraction of full redundancy's cost")
}

// measure interleaves high-priority pings (intent 1) with bulk data
// (intent 0) on a lossy network and reports p95 delivery latencies.
func measure(name, src string) (prioP95, bulkP95 time.Duration, wire int64, err error) {
	net := progmp.NewNetwork(9)
	conn, err := net.Dial(progmp.ConnConfig{UncoupledReno: true},
		progmp.Path{Name: "p1", RateBps: 2e6, OneWayDelay: 10 * time.Millisecond, LossProb: 0.02},
		progmp.Path{Name: "p2", RateBps: 2e6, OneWayDelay: 20 * time.Millisecond, LossProb: 0.02},
	)
	if err != nil {
		return 0, 0, 0, err
	}
	sched, err := progmp.LoadScheduler(name, src)
	if err != nil {
		return 0, 0, 0, err
	}
	conn.SetScheduler(sched)

	type sendRec struct {
		end  int64
		at   time.Duration
		prio bool
	}
	var sends []sendRec
	var latPrio, latBulk []time.Duration
	var delivered int64
	conn.OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		for len(sends) > 0 && delivered >= sends[0].end {
			lat := at - sends[0].at
			if sends[0].prio {
				latPrio = append(latPrio, lat)
			} else {
				latBulk = append(latBulk, lat)
			}
			sends = sends[1:]
		}
	})
	var enqueued int64
	send := func(n int, prio bool) {
		enqueued += int64(n)
		sends = append(sends, sendRec{end: enqueued, at: net.Now(), prio: prio})
		intent := int64(0)
		if prio {
			intent = 1
		}
		conn.SendWithIntent(n, intent)
	}
	for at := 500 * time.Millisecond; at < 10*time.Second; at += 100 * time.Millisecond {
		at := at
		net.At(at, func() { send(1460, true) })                        // latency-critical ping
		net.At(at+50*time.Millisecond, func() { send(16<<10, false) }) // bulk chunk
	}
	net.Run(40 * time.Second)
	for _, s := range conn.Subflows() {
		wire += s.BytesSent
	}
	return p95(latPrio), p95(latBulk), wire, nil
}

func p95(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[int(0.95*float64(len(sorted)-1))]
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
