// Quickstart: load the default ProgMP scheduler, transfer a megabyte
// over a two-path (WiFi + LTE) MPTCP connection in the simulated
// network, and print what each subflow carried.
package main

import (
	"fmt"
	"log"
	"time"

	"progmp"
)

func main() {
	// A deterministic network: same seed, same run.
	net := progmp.NewNetwork(42)

	// One MPTCP connection with two subflows. The LTE path is marked
	// backup = non-preferred, which the default scheduler interprets
	// as "only use when nothing else exists".
	conn, err := net.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Load the kernel's default scheduler, expressed in the ProgMP
	// language, onto the bytecode VM backend.
	sched, err := progmp.LoadScheduler("default", progmp.Schedulers["minRTT"])
	if err != nil {
		log.Fatal(err)
	}
	conn.SetScheduler(sched)

	var delivered int64
	var last time.Duration
	conn.OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		last = at
	})

	net.At(0, func() { conn.Send(1 << 20) })
	net.Run(30 * time.Second)

	fmt.Printf("delivered %d bytes in %v (%.2f MB/s goodput)\n",
		delivered, last, float64(delivered)/last.Seconds()/1e6)
	for _, s := range conn.Subflows() {
		fmt.Printf("  %-5s sent %8d bytes in %4d packets, srtt %v\n",
			s.Name, s.BytesSent, s.PktsSent, s.SRTT.Round(time.Millisecond))
	}
}
