// Live control: an application steering its own transfer through the
// out-of-process control plane (internal/ctl) while it runs. One
// goroutine hosts the simulation with a ctl server on a Unix socket —
// exactly what `mpsim -ctl` does — and the main goroutine plays the
// application: it streams its data in chunks over the socket, raises
// the TAP target register when its "bitrate" steps up, and hot-swaps
// schedulers between phases. The SCHED_SWAP trace events stream back
// over the same socket.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"progmp"
	"progmp/internal/ctl"
)

const (
	chunk = 2 << 20 // bytes per streaming phase
	pace  = 200     // virtual seconds per wall second
)

func main() {
	// ---- The "server" half: a simulation with a control socket. In a
	// real deployment this is `mpsim -ctl /tmp/mpsim.sock` (or any
	// embedder of internal/ctl) in another terminal.
	nw := progmp.NewNetwork(7)
	conn, err := nw.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond, LossProb: 0.003},
		progmp.Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	tracer := progmp.NewTracer(0)
	conn.Instrument(tracer, progmp.NewMetrics())
	minRTT, err := progmp.LoadScheduler("minRTT", progmp.Schedulers["minRTT"])
	if err != nil {
		log.Fatal(err)
	}
	conn.SetScheduler(minRTT)

	dir, err := os.MkdirTemp("", "livectl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	srv := ctl.NewServer(ctl.Options{Network: nw, Tracer: tracer})
	srv.Register("stream", conn)
	go srv.Serve(ln)
	done := make(chan struct{})
	go func() {
		nw.RunLive(10*time.Minute, pace)
		close(done)
	}()
	defer func() {
		nw.StopLive()
		srv.Close()
		<-done
	}()

	// ---- The "application" half: steer the stream over the socket.
	c, err := ctl.Dial("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	swaps, err := c.Subscribe(1, []string{"SCHED_SWAP"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer swaps.Close()

	// Phase 1: bulk prefetch on the default scheduler.
	fmt.Println("phase 1: minRTT, prefetching a chunk")
	streamChunk(c)

	// Phase 2: playback starts — switch to the target-aware TAP
	// scheduler and tell it the stream bitrate through R1.
	if _, err := c.Swap(1, "tap", "", ""); err != nil {
		log.Fatal(err)
	}
	if err := c.SetReg(1, progmp.R1, 2_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 2: hot-swapped to tap, target 2.0 MB/s")
	streamChunk(c)

	// Phase 3: the latency-critical tail — duplicate every packet.
	sw, err := c.Swap(1, "redundant", "", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: hot-swapped %s -> %s for the tail\n", sw.PrevScheduler, sw.Scheduler)
	streamChunk(c)

	// Both swaps were traced; read them back off the live stream.
	for i := 0; i < 2; i++ {
		select {
		case ev := <-swaps.Events():
			fmt.Printf("  SCHED_SWAP traced at t=%v\n", time.Duration(ev.AtUS)*time.Microsecond)
		case <-time.After(10 * time.Second):
			log.Fatal("missing SCHED_SWAP event")
		}
	}

	res, err := c.List()
	if err != nil {
		log.Fatal(err)
	}
	ci := res.Conns[0]
	fmt.Printf("\ndone: scheduler=%s allAcked=%v\n", ci.Scheduler, ci.AllAcked)
	for _, sf := range ci.Subflows {
		fmt.Printf("  %-5s carried %8d bytes (%d retx)\n", sf.Name, sf.BytesSent, sf.Retransmissions)
	}
}

// streamChunk enqueues one chunk and polls the control plane until the
// connection drains, like an application pacing itself on its socket
// buffer.
func streamChunk(c *ctl.Client) {
	if err := c.Send(1, chunk, 0); err != nil {
		log.Fatal(err)
	}
	for {
		res, err := c.List()
		if err != nil {
			log.Fatal(err)
		}
		if res.Conns[0].AllAcked {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
