package progmp

import (
	"strings"
	"testing"
	"time"
)

func TestCheckScheduler(t *testing.T) {
	if err := CheckScheduler(Schedulers["minRTT"]); err != nil {
		t.Errorf("corpus scheduler rejected: %v", err)
	}
	if err := CheckScheduler("VAR x = Q.POP().SIZE;"); err == nil {
		t.Error("side-effecting condition accepted")
	}
	if err := CheckScheduler("IF ("); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestLoadAndDisassemble(t *testing.T) {
	if _, err := LoadScheduler("default", Schedulers["minRTT"]); err != nil {
		t.Fatalf("LoadScheduler: %v", err)
	}
	asm, err := Disassemble(Schedulers["roundRobin"])
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if !strings.Contains(asm, "return") {
		t.Errorf("disassembly looks wrong:\n%s", asm)
	}
	formatted, err := FormatScheduler(Schedulers["redundant"])
	if err != nil {
		t.Fatalf("FormatScheduler: %v", err)
	}
	if err := CheckScheduler(formatted); err != nil {
		t.Errorf("formatted output does not re-check: %v", err)
	}
}

func TestQuickstartFlow(t *testing.T) {
	net := NewNetwork(42)
	conn, err := net.Dial(ConnConfig{},
		Path{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
		Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
	)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sched, err := LoadScheduler("default", Schedulers["minRTT"])
	if err != nil {
		t.Fatalf("LoadScheduler: %v", err)
	}
	conn.SetScheduler(sched)
	var delivered int64
	var lastAt time.Duration
	conn.OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		lastAt = at
	})
	net.At(0, func() { conn.Send(256 << 10) })
	net.Run(10 * time.Second)
	if !conn.AllAcked() {
		t.Fatal("transfer incomplete")
	}
	if delivered != 256<<10 {
		t.Errorf("delivered %d, want %d", delivered, 256<<10)
	}
	if lastAt == 0 || lastAt > 2*time.Second {
		t.Errorf("implausible completion time %v", lastAt)
	}
	stats := conn.Subflows()
	if len(stats) != 2 || stats[0].Name != "wifi" {
		t.Errorf("unexpected subflow stats: %+v", stats)
	}
	if stats[0].BytesSent == 0 {
		t.Errorf("wifi subflow carried nothing")
	}
	if stats[1].BytesSent != 0 {
		t.Errorf("default scheduler used the backup subflow (%d bytes) with wifi alive", stats[1].BytesSent)
	}
}

func TestRegisterAPI(t *testing.T) {
	net := NewNetwork(1)
	conn, err := net.Dial(ConnConfig{}, Path{Name: "p", RateBps: 1e6, OneWayDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := LoadScheduler("tap", Schedulers["tap"])
	if err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(sched)
	conn.SetRegister(R1, 123456)
	if got := conn.Register(R1); got != 123456 {
		t.Errorf("Register(R1) = %d, want 123456", got)
	}
}

func TestSubflowManagement(t *testing.T) {
	net := NewNetwork(1)
	conn, err := net.Dial(ConnConfig{},
		Path{Name: "a", RateBps: 1e6, OneWayDelay: time.Millisecond},
		Path{Name: "b", RateBps: 1e6, OneWayDelay: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetSubflowBackup(1, true); err != nil {
		t.Errorf("SetSubflowBackup: %v", err)
	}
	if err := conn.CloseSubflow(0); err != nil {
		t.Errorf("CloseSubflow: %v", err)
	}
	if err := conn.CloseSubflow(7); err == nil {
		t.Error("CloseSubflow accepted an invalid index")
	}
	net.Run(100 * time.Millisecond)
	stats := conn.Subflows()
	if !stats[0].Closed {
		t.Errorf("subflow 0 should be closed")
	}
}

func TestDialValidation(t *testing.T) {
	net := NewNetwork(1)
	if _, err := net.Dial(ConnConfig{}); err == nil {
		t.Error("Dial with no paths must fail")
	}
}

func TestCongestionControlOption(t *testing.T) {
	net := NewNetwork(1)
	for _, cc := range []string{"", "lia", "olia", "reno"} {
		if _, err := net.Dial(ConnConfig{CongestionControl: cc},
			Path{Name: "p", RateBps: 1e6, OneWayDelay: time.Millisecond}); err != nil {
			t.Errorf("CC %q rejected: %v", cc, err)
		}
	}
	if _, err := net.Dial(ConnConfig{CongestionControl: "cubic"},
		Path{Name: "p", RateBps: 1e6, OneWayDelay: time.Millisecond}); err == nil {
		t.Error("unknown CC accepted")
	}
}

func TestFacadeCoverage(t *testing.T) {
	net := NewNetwork(2)
	if net.Now() != 0 {
		t.Errorf("fresh network Now = %v", net.Now())
	}
	conn, err := net.Dial(ConnConfig{},
		Path{Name: "a", RateBps: 2e6, OneWayDelay: 2 * time.Millisecond},
		Path{Name: "b", RateBps: 2e6, OneWayDelay: 8 * time.Millisecond, LossProb: 0.01},
	)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := LoadSchedulerBackend("rr", Schedulers["roundRobin"], BackendInterpreter)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(sched)
	pm := conn.EnablePathManager(PathManagerConfig{DeadAfter: 2 * time.Second})
	if pm == nil {
		t.Fatal("EnablePathManager returned nil")
	}
	net.At(0, func() { conn.SendWithIntent(64<<10, 2) })
	// RunAll would never drain here: the path manager re-arms its
	// periodic check forever. Run to a horizon instead.
	net.Run(30 * time.Second)
	if !conn.AllAcked() {
		t.Errorf("transfer incomplete")
	}
	if conn.Inner() == nil {
		t.Errorf("Inner must expose the model connection")
	}
	if got := net.Now(); got == 0 {
		t.Errorf("Run did not advance time")
	}
	pm.Stop()
}

func TestRunAllDrains(t *testing.T) {
	net := NewNetwork(4)
	fired := false
	net.At(3*time.Second, func() { fired = true })
	net.RunAll()
	if !fired || net.Now() != 3*time.Second {
		t.Errorf("RunAll did not drain: fired=%v now=%v", fired, net.Now())
	}
}

func TestVetScheduler(t *testing.T) {
	if rep := VetScheduler(Schedulers["minRTT"]); !rep.Clean() {
		t.Errorf("minRTT must vet clean: %v", rep.Diagnostics)
	} else if rep.StepBoundAt == 0 {
		t.Error("clean program must carry a step bound")
	}
	if rep := VetScheduler("SET(R1, R1 + 1);"); rep.Warnings() == 0 {
		t.Error("no-push program must carry warnings")
	}
	if rep := VetScheduler("IF ("); rep.Errors() == 0 {
		t.Error("unparseable program must carry error diagnostics")
	}
}
