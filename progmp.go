// Package progmp is a Go reproduction of ProgMP — the programming
// model for application-defined Multipath TCP scheduling of Frömmgen
// et al. (ACM Middleware 2017, https://progmp.net).
//
// The package offers the extended scheduling API of §3.2 in the shape
// of the paper's userspace library (Fig. 8): load scheduler
// specifications, attach them to connections, set registers, and
// annotate data with per-packet scheduling intents. Because the kernel
// data path is replaced by a deterministic userspace MPTCP model (see
// DESIGN.md), connections run inside a simulated network:
//
//	net := progmp.NewNetwork(42)
//	conn, _ := net.Dial(progmp.ConnConfig{},
//	    progmp.Path{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
//	    progmp.Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
//	)
//	sched, _ := progmp.LoadScheduler("myTAP", progmp.Schedulers["tap"])
//	conn.SetScheduler(sched)
//	conn.SetRegister(progmp.R1, 4<<20) // target 4 MB/s
//	conn.Send(1<<20, 0)
//	net.Run(10 * time.Second)
package progmp

import (
	"fmt"
	"io"
	"time"

	"progmp/internal/analysis"
	"progmp/internal/core"
	"progmp/internal/guard"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
	"progmp/internal/vm"
	"progmp/internal/xstate"
)

// Backend selects the execution environment for scheduler programs
// (§4.1 of the paper).
type Backend = core.Backend

// The three execution back-ends.
const (
	BackendInterpreter = core.BackendInterpreter
	BackendCompiled    = core.BackendCompiled
	BackendVM          = core.BackendVM
)

// Scheduler is a loaded, executable scheduler program.
type Scheduler = core.Scheduler

// Registry holds named schedulers for reuse across connections.
type Registry = core.Registry

// Register indices for SetRegister (the language spells them R1..R8).
const (
	R1 = iota
	R2
	R3
	R4
	R5
	R6
	R7
	R8
)

// Schedulers is the paper's scheduler corpus: the mainline schedulers
// of §3.4 and the novel schedulers of §5, as ProgMP source text. See
// package schedlib for the register and packet-property conventions.
var Schedulers = schedlib.All

// CheckScheduler parses and type-checks a scheduler specification,
// returning its static diagnostics without loading it.
func CheckScheduler(src string) error {
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	_, err = types.Check(prog)
	return err
}

// AnalysisReport is the static analyzer's verdict on a scheduler
// program: diagnostics (rule id, severity, position) plus the proven
// worst-case step bound. See docs/ANALYSIS.md for the rule catalogue.
type AnalysisReport = analysis.Report

// VetScheduler runs the full static analyzer over a scheduler
// specification — the same pass that gates LoadScheduler and the
// control plane's swap verb — and returns the report regardless of
// whether the program would be admitted. Programs that fail to parse
// or type-check report those failures as error-severity diagnostics.
func VetScheduler(src string) *AnalysisReport {
	return analysis.AnalyzeSource(src, analysis.Options{})
}

// LoadScheduler compiles a specification on the default back-end (the
// bytecode VM with runtime specialization, the paper's recommended
// configuration).
func LoadScheduler(name, src string) (*Scheduler, error) {
	return core.Load(name, src, core.BackendVM)
}

// LoadSchedulerBackend compiles a specification on a chosen back-end.
func LoadSchedulerBackend(name, src string, backend Backend) (*Scheduler, error) {
	return core.Load(name, src, backend)
}

// Disassemble compiles a specification to bytecode and returns its
// disassembly — the tooling view of the cross-compiler output.
func Disassemble(src string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	info, err := types.Check(prog)
	if err != nil {
		return "", err
	}
	p, err := vm.Compile(info, vm.Options{SubflowCount: -1})
	if err != nil {
		return "", err
	}
	return p.Disassemble(), nil
}

// FormatScheduler parses a specification and returns it pretty-printed
// in canonical form.
func FormatScheduler(src string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	return prog.Format(), nil
}

// ---- Simulated network and connections ----

// Path describes one subflow path of a connection.
type Path struct {
	Name        string
	RateBps     float64       // link capacity in bytes/s
	OneWayDelay time.Duration // propagation delay
	Jitter      time.Duration // uniform extra delay bound
	LossProb    float64       // Bernoulli loss probability
	Backup      bool          // mark non-preferred (IS_BACKUP)
	// EstablishAt delays the subflow handshake (path-manager timing).
	EstablishAt time.Duration
	// RateFn optionally overrides RateBps with a time-varying capacity.
	RateFn func(at time.Duration) float64
	// DelayFn optionally overrides OneWayDelay with a time-varying
	// propagation delay.
	DelayFn func(at time.Duration) time.Duration
}

// ConnConfig tunes a connection; the zero value uses the defaults of
// the underlying model (MSS 1460, LIA congestion control, optimized
// receiver, 4 MiB receive buffer).
type ConnConfig struct {
	MSS            int
	RcvBuf         int
	UncoupledReno  bool // use per-subflow Reno instead of coupled LIA
	LegacyReceiver bool // pre-§4.2 receiver behaviour
	// CongestionControl selects the algorithm by name: "lia"
	// (default), "olia", or "reno". It overrides UncoupledReno.
	CongestionControl string
	// Store attaches the connection to a cross-connection shared-state
	// store: its schedulers then read and write the shared globals
	// G1..G8 and see the per-destination path statistics (XRTT, XLOST,
	// XDELIVERED, XQUAR) other attached connections have fed. Nil keeps
	// the connection isolated: globals stay connection-local and the
	// X-properties read 0.
	Store *SharedStore
}

// Network is a deterministic simulated network hosting MPTCP
// connections.
type Network struct {
	eng   *netsim.Engine
	inbox *netsim.Inbox
}

// NewNetwork creates a network with seeded randomness; equal seeds
// reproduce runs exactly.
func NewNetwork(seed int64) *Network {
	return &Network{eng: netsim.NewEngine(seed), inbox: netsim.NewInbox()}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.eng.Now() }

// At schedules fn at the given virtual time (application logic,
// workload generation, register updates).
func (n *Network) At(at time.Duration, fn func()) { n.eng.At(at, fn) }

// Run advances the simulation until the given virtual time.
func (n *Network) Run(until time.Duration) { n.eng.RunUntil(until) }

// RunAll drains every pending event.
func (n *Network) RunAll() { n.eng.Run() }

// RunLive advances the simulation like Run, but paced against the wall
// clock and open to live steering: closures injected through Do from
// other goroutines (e.g. the internal/ctl control plane) execute on
// the simulation goroutine between event slices. pace is virtual
// seconds per wall second (1 = real time, <= 0 = unpaced). The run
// ends at the deadline or when StopLive is called; either way the
// live phase is over when RunLive returns — pending and future Do
// calls fail with netsim.ErrInboxClosed rather than blocking forever.
func (n *Network) RunLive(until time.Duration, pace float64) {
	n.eng.RunLiveUntil(until, pace, n.inbox)
	n.inbox.Close()
}

// Do runs fn on the simulation goroutine and blocks until it has
// executed. It is the only safe way for a foreign goroutine to touch
// connections while RunLive is driving the network; it fails with
// netsim.ErrInboxClosed after StopLive or once RunLive has returned.
// Never call it from the simulation goroutine itself (use At instead).
func (n *Network) Do(fn func()) error { return n.inbox.Do(fn) }

// StopLive ends a live run: a concurrent RunLive returns at its next
// slice boundary and pending and future Do calls fail. Call it when
// tearing down a control-plane server; it is idempotent and safe from
// any goroutine.
func (n *Network) StopLive() { n.inbox.Close() }

// Conn is an MPTCP connection inside a simulated network, exposing the
// extended scheduling API of §3.2.
type Conn struct {
	inner *mptcp.Conn
	net   *Network
	// sched is the last core scheduler installed via SetScheduler (nil
	// when a raw mptcp.Scheduler or a supervisor wrapper is in place);
	// kept so Instrument can attach fault tracing in either call order.
	sched *core.Scheduler
	// sup is the supervisor installed by Supervise (nil when
	// unsupervised).
	sup *guard.Supervisor
}

// Dial creates a connection with one subflow per path.
func (n *Network) Dial(cfg ConnConfig, paths ...Path) (*Conn, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("progmp: a connection needs at least one path")
	}
	mcfg := mptcp.Config{MSS: cfg.MSS, RcvBuf: cfg.RcvBuf, Store: cfg.Store}
	if cfg.UncoupledReno {
		mcfg.CC = mptcp.Reno{}
	}
	switch cfg.CongestionControl {
	case "":
		// Keep the UncoupledReno choice or the LIA default.
	case "lia":
		mcfg.CC = mptcp.LIA{}
	case "olia":
		mcfg.CC = mptcp.OLIA{}
	case "reno":
		mcfg.CC = mptcp.Reno{}
	default:
		return nil, fmt.Errorf("progmp: unknown congestion control %q", cfg.CongestionControl)
	}
	if cfg.LegacyReceiver {
		mcfg.ReceiverMode = mptcp.ReceiverLegacy
	}
	conn := mptcp.NewConn(n.eng, mcfg)
	for _, p := range paths {
		rate := p.RateFn
		if rate == nil {
			rate = netsim.ConstantRate(p.RateBps)
		}
		var loss netsim.LossModel
		if p.LossProb > 0 {
			loss = netsim.BernoulliLoss{P: p.LossProb}
		}
		link := netsim.NewLink(n.eng, netsim.PathConfig{
			Name:    p.Name,
			Rate:    rate,
			Delay:   p.OneWayDelay,
			DelayFn: p.DelayFn,
			Jitter:  p.Jitter,
			Loss:    loss,
		})
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{
			Name:    p.Name,
			Link:    link,
			Backup:  p.Backup,
			StartAt: p.EstablishAt,
		}); err != nil {
			return nil, err
		}
	}
	return &Conn{inner: conn, net: n}, nil
}

// SetScheduler installs a loaded scheduler on the connection
// (per-connection scheduler choice, §3.2). It replaces any supervisor
// installed by Supervise; to replace the program under an existing
// supervisor — or to swap schedulers on a live connection at all — use
// HotSwap. Safe at any time: a swap requested mid-transfer applies
// atomically at a scheduler-execution boundary.
func (c *Conn) SetScheduler(s *Scheduler) {
	c.sched = s
	c.sup = nil
	c.inner.SetScheduler(s)
	if t := c.inner.Tracer(); t != nil && s != nil {
		s.InstrumentTrace(t, c.net.eng.Now)
	}
}

// HotSwap replaces the running scheduler with s on a live connection
// (the control plane's swap verb). On an unsupervised connection this
// is SetScheduler with swap tracing. On a supervised connection the
// supervisor is retargeted instead: s becomes the supervised program
// and the previously supervised program becomes the quarantine
// fallback, so if the swapped-in scheduler misbehaves the connection
// degrades back to what ran before the swap — not to native MinRTT.
// The swap lands atomically at a scheduler-execution boundary and
// emits a SCHED_SWAP trace event. It returns a description of the
// scheduler that was replaced.
func (c *Conn) HotSwap(s *Scheduler) (prev SchedulerInfo, err error) {
	if s == nil {
		return SchedulerInfo{}, fmt.Errorf("progmp: HotSwap needs a scheduler")
	}
	prev = c.SchedulerInfo()
	if t := c.inner.Tracer(); t != nil {
		s.InstrumentTrace(t, c.net.eng.Now)
	}
	if c.sup != nil {
		c.sup.Swap(s, c.sup.Inner())
		// Keep any fleet enrollment pointing at the program actually
		// running, so fleet blocks land on the right name.
		c.sup.ReEnroll(s.Name())
		c.sched = s
		c.inner.NoteSchedSwap()
		c.inner.Kick()
		return prev, nil
	}
	c.sched = s
	c.inner.SetScheduler(s)
	return prev, nil
}

// SchedulerInfo describes the connection's installed scheduling
// program for monitoring (the control plane's list verb).
type SchedulerInfo struct {
	// Name and Backend identify the loaded ProgMP program; Name is
	// "native" with an empty Backend when a raw Go scheduler (or no
	// program at all) is installed.
	Name    string
	Backend string
	// Supervised reports whether a guard.Supervisor wraps the program;
	// GuardState is its state machine position ("" unsupervised).
	Supervised bool
	GuardState string
}

// SchedulerInfo returns a snapshot of the installed scheduler.
func (c *Conn) SchedulerInfo() SchedulerInfo {
	info := SchedulerInfo{Name: "native"}
	if c.sched != nil {
		info.Name = c.sched.Name()
		info.Backend = c.sched.Backend().String()
	}
	if c.sup != nil {
		info.Supervised = true
		info.GuardState = c.sup.State().String()
		if c.sup.FleetBlocked() {
			info.GuardState = "fleet-blocked"
		}
	}
	return info
}

// SetRegister writes scheduler register i (R1..R8) — the application's
// channel for scheduling intents such as target bitrates or
// end-of-flow signals. An out-of-range index is rejected with an error
// (and counted as api.register_oob when metrics are attached).
func (c *Conn) SetRegister(i int, v int64) error { return c.inner.SetRegister(i, v) }

// Register reads scheduler register i.
func (c *Conn) Register(i int) int64 { return c.inner.Register(i) }

// Send enqueues n bytes without a scheduling intent.
func (c *Conn) Send(n int) { c.inner.Send(n, 0) }

// SendWithIntent enqueues n bytes whose packets carry the scheduling
// intent prop (per-packet packet properties, §3.2).
func (c *Conn) SendWithIntent(n int, prop int64) { c.inner.Send(n, prop) }

// OnDeliver registers the receiver-side in-order delivery callback.
// OnAllAcked registers a one-shot callback fired when the send buffer
// fully drains (flow completion on the sender side). Re-register from
// inside the callback to watch a later transfer.
func (c *Conn) OnAllAcked(fn func()) { c.inner.OnAllAcked(fn) }

// ReleaseDests drops the connection's shared-store destination
// references so idle records can be evicted once every connection
// using them has finished. Idempotent; a no-op without a store.
func (c *Conn) ReleaseDests() { c.inner.ReleaseDests() }

func (c *Conn) OnDeliver(fn func(seq int64, size int, at time.Duration)) {
	c.inner.Receiver().OnDeliver(fn)
}

// AllAcked reports whether every sent byte has been acknowledged.
func (c *Conn) AllAcked() bool { return c.inner.AllAcked() }

// SubflowStats describes one subflow for monitoring.
type SubflowStats struct {
	Name            string
	Established     bool
	Closed          bool
	Backup          bool
	SRTT            time.Duration
	Cwnd            float64
	BytesSent       int64
	PktsSent        int64
	Retransmissions int64
	ThroughputBps   int64
}

// Subflows returns a snapshot of the connection's subflows.
func (c *Conn) Subflows() []SubflowStats {
	var out []SubflowStats
	for _, s := range c.inner.Subflows() {
		out = append(out, SubflowStats{
			Name:            s.Name(),
			Established:     s.Established(),
			Closed:          s.Closed(),
			Backup:          s.Backup(),
			SRTT:            s.SRTT(),
			Cwnd:            s.Cwnd(),
			BytesSent:       s.BytesSent,
			PktsSent:        s.PktsSent,
			Retransmissions: s.Retransmissions,
			ThroughputBps:   s.Throughput(),
		})
	}
	return out
}

// CloseSubflow tears down subflow i (path-manager operation, e.g. a
// WiFi association loss during handover experiments).
func (c *Conn) CloseSubflow(i int) error {
	sbfs := c.inner.Subflows()
	if i < 0 || i >= len(sbfs) {
		return fmt.Errorf("progmp: no subflow %d", i)
	}
	sbfs[i].Close()
	return nil
}

// SetSubflowBackup flips the preference flag of subflow i.
func (c *Conn) SetSubflowBackup(i int, backup bool) error {
	sbfs := c.inner.Subflows()
	if i < 0 || i >= len(sbfs) {
		return fmt.Errorf("progmp: no subflow %d", i)
	}
	sbfs[i].SetBackup(backup)
	return nil
}

// PathManagerConfig re-exports the path-manager options.
type PathManagerConfig = mptcp.PathManagerConfig

// PathManager re-exports the path-manager building block.
type PathManager = mptcp.PathManager

// EnablePathManager attaches a path manager (§2.1 building block) that
// tears down subflows which stop making acknowledgement progress and
// optionally promotes a backup when no preferred subflow remains.
func (c *Conn) EnablePathManager(cfg PathManagerConfig) *PathManager {
	return mptcp.NewPathManager(c.inner, cfg)
}

// Inner exposes the underlying model connection for advanced
// instrumentation (experiments, benchmarks).
func (c *Conn) Inner() *mptcp.Conn { return c.inner }

// ---- Cross-connection shared state ----

// SharedStore is the cross-connection shared-state store (see
// internal/xstate and docs/SHAREDSTATE.md): global registers G1..G8
// shared by every attached connection, plus per-destination path
// statistics — smoothed RTT, losses, delivered bytes, quarantine
// signals — keyed by path name, so one connection can steer around a
// path another connection observed degrading. Readers get immutable
// epoch snapshots (one atomic load, zero allocations); safe for
// concurrent use from any goroutine.
type SharedStore = xstate.Store

// SharedSnapshot is one immutable epoch of a SharedStore.
type SharedSnapshot = xstate.Snapshot

// DestStats is the per-destination statistics record of a SharedStore.
type DestStats = xstate.DestStats

// NumSharedGlobals is the size of the shared global register file
// G1..G8, mirroring the per-connection registers R1..R8.
const NumSharedGlobals = runtime.NumGlobals

// NewSharedStore creates an empty shared-state store at epoch 0.
// Attach it to connections via ConnConfig.Store; every connection
// dialed with the same store shares one view.
func NewSharedStore() *SharedStore { return xstate.NewStore() }

// SharedStore returns the store the connection was dialed with (nil
// when the connection is isolated).
func (c *Conn) SharedStore() *SharedStore { return c.inner.Store() }

// ---- Observability ----

// Tracer records scheduler-decision events into a fixed-size ring
// buffer (see internal/obs and docs/OBSERVABILITY.md). A nil *Tracer is
// a valid no-op sink.
type Tracer = obs.Tracer

// TraceEvent is one recorded trace event.
type TraceEvent = obs.Event

// Metrics is a registry of named counters, gauges and histograms.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's values.
type MetricsSnapshot = obs.Snapshot

// NewTracer allocates a tracer with the given ring capacity (<= 0
// selects the default of 65536 events).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// MetricsAggregator merges metric registries across connections into a
// fleet-wide view: counters sum, gauges keep last/min/max/sum,
// histograms merge bucket-by-bucket. Attach one labeled registry per
// connection; see docs/OBSERVABILITY.md ("Fleet aggregation").
type MetricsAggregator = obs.Aggregator

// MetricsLabels identifies one registry within an aggregator.
type MetricsLabels = obs.Labels

// MetricsTimeSeries records aggregated samples into a bounded ring.
type MetricsTimeSeries = obs.TimeSeries

// NewMetricsAggregator returns an empty fleet aggregator.
func NewMetricsAggregator() *MetricsAggregator { return obs.NewAggregator() }

// NewMetricsTimeSeries creates a time-series recorder over agg with the
// given ring capacity (<= 0 selects the default of 4096 samples).
func NewMetricsTimeSeries(agg *MetricsAggregator, capacity int) *MetricsTimeSeries {
	return obs.NewTimeSeries(agg, capacity)
}

// WriteOpenMetrics renders an aggregator's current state in the
// OpenMetrics text exposition format (scrapeable by Prometheus).
func WriteOpenMetrics(w io.Writer, agg *MetricsAggregator) error {
	return obs.WriteOpenMetrics(w, agg.Aggregate())
}

// WriteTraceJSONL streams events as one JSON object per line.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return obs.WriteJSONL(w, events)
}

// WriteChromeTrace renders events in Chrome trace_event format for
// chrome://tracing / Perfetto.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// Instrument attaches a tracer and/or a metrics registry to the
// connection. Either may be nil; call it before traffic starts. The
// registry also receives the simulation engine's event metrics, the
// installed scheduler's fault tracing, and — when the connection is
// supervised — the supervisor's transition events and metrics.
func (c *Conn) Instrument(t *Tracer, m *Metrics) {
	c.inner.Instrument(t, m)
	if m != nil {
		c.net.eng.Instrument(m)
	}
	if c.sched != nil && t != nil {
		c.sched.InstrumentTrace(t, c.net.eng.Now)
	}
	if c.sup != nil {
		c.sup.Instrument(t, c.inner.TraceConnID(), m)
	}
}

// Tracer returns the connection's tracer (nil when tracing is off).
func (c *Conn) Tracer() *Tracer { return c.inner.Tracer() }

// Metrics returns the connection's metrics registry (nil when off).
func (c *Conn) Metrics() *Metrics { return c.inner.Metrics() }

// MetricsReport renders the connection's metrics registry as a
// proc-style text page ("" when no registry is attached).
func (c *Conn) MetricsReport() string { return c.inner.Metrics().Render() }

// ---- Scheduler supervision (graceful degradation) ----

// Supervisor wraps a scheduler with panic recovery, action validation,
// stall detection and graceful degradation to a trusted fallback; see
// internal/guard and docs/ROBUSTNESS.md.
type Supervisor = guard.Supervisor

// SupervisorConfig tunes a Supervisor. The zero value uses the
// defaults: native MinRTT fallback, three strikes, 500 ms first
// quarantine doubling to 30 s. The Now/After/Wake hooks are wired by
// Conn.Supervise; leave them unset.
type SupervisorConfig = guard.Config

// SupervisorState is the supervision state machine position.
type SupervisorState = guard.State

// The supervision states.
const (
	SupervisorActive      = guard.StateActive
	SupervisorQuarantined = guard.StateQuarantined
	SupervisorProbation   = guard.StateProbation
)

// SchedulerExec is the minimal scheduler execution interface Supervise
// accepts: loaded ProgMP programs (*Scheduler) and native Go
// schedulers alike.
type SchedulerExec = guard.Scheduler

// Supervise installs s under supervision: panics are recovered,
// invalid actions stripped, stalls detected, and on repeated strikes
// the connection degrades to the fallback scheduler (native MinRTT by
// default) with exponential-backoff probation. The supervisor's clock,
// watchdog and wake hooks are wired to the simulated network. Call
// after Instrument (or call Instrument later — either order works) so
// transitions are traced.
func (c *Conn) Supervise(s SchedulerExec, cfg SupervisorConfig) *Supervisor {
	cfg.Now = c.net.eng.Now
	cfg.After = func(d time.Duration, fn func()) { c.net.eng.After(d, fn) }
	cfg.Wake = c.inner.Kick
	sup := guard.New(s, cfg)
	if cs, ok := s.(*core.Scheduler); ok {
		c.sched = cs
		if t := c.inner.Tracer(); t != nil {
			cs.InstrumentTrace(t, c.net.eng.Now)
		}
	} else {
		c.sched = nil
	}
	c.sup = sup
	c.inner.SetScheduler(sup)
	if t, m := c.inner.Tracer(), c.inner.Metrics(); t != nil || m != nil {
		sup.Instrument(t, c.inner.TraceConnID(), m)
	}
	return sup
}

// Supervisor returns the supervisor installed by Supervise (nil when
// the connection is unsupervised).
func (c *Conn) Supervisor() *Supervisor { return c.sup }

// ---- Fleet-wide quarantine ----

// Fleet is the failure-containment tier above per-connection
// supervision: when the same program quarantines on enough distinct
// connections, it is blocked fleet-wide — every enrolled connection
// degrades to native MinRTT and the control plane refuses to install
// the program without force — until a clean backoff window lifts the
// block. See internal/guard and docs/ROBUSTNESS.md.
type Fleet = guard.Fleet

// FleetConfig tunes a Fleet; the zero value blocks at 3 connections
// with a 10 s first clean window doubling to 10 min. The Now/After
// hooks are wired by Network.NewFleet; leave them unset.
type FleetConfig = guard.FleetConfig

// NewFleet creates a fleet quarantine tier clocked by this network: the
// clean-window lift timer runs on the simulation goroutine, like every
// supervisor transition.
func (n *Network) NewFleet(cfg FleetConfig) *Fleet {
	cfg.Now = n.eng.Now
	cfg.After = func(d time.Duration, fn func()) { n.eng.After(d, fn) }
	return guard.NewFleet(cfg)
}

// JoinFleet enrolls the connection's supervisor in f under the given
// program name, so its quarantines count toward (and fleet blocks of
// that program apply to) this connection. The connection must be
// supervised first. HotSwap keeps the enrollment current automatically.
func (c *Conn) JoinFleet(f *Fleet, program string) error {
	if c.sup == nil {
		return fmt.Errorf("progmp: JoinFleet needs a supervised connection (call Supervise first)")
	}
	f.Enroll(program, c.sup)
	return nil
}

// ---- Chaos fault-injection harness ----

// ChaosResult summarizes one chaos soak run.
type ChaosResult = mptcp.ChaosResult

// ChaosScenarioNames lists the built-in chaos scenarios, sorted:
// bursty loss, link flaps, reorder/duplication, subflow death with
// revival, and the combined meltdown.
func ChaosScenarioNames() []string { return mptcp.ChaosScenarioNames() }

// ChaosScenarioDesc returns the one-line description of a scenario
// ("" for unknown names).
func ChaosScenarioDesc(name string) string { return mptcp.ChaosScenarios[name].Desc }

// RunChaos executes one seeded soak of the named chaos scenario with
// the given scheduler (nil: the native MinRTT reference scheduler) and
// returns the conservation verdict: a nil error means every byte was
// delivered exactly once, in order, and fully acknowledged.
func RunChaos(scenario string, seed int64, s *Scheduler) (ChaosResult, error) {
	sc, ok := mptcp.ChaosScenarios[scenario]
	if !ok {
		return ChaosResult{}, fmt.Errorf("progmp: unknown chaos scenario %q (have %v)",
			scenario, ChaosScenarioNames())
	}
	var fn func() mptcp.Scheduler
	if s != nil {
		fn = func() mptcp.Scheduler { return s }
	}
	return mptcp.RunChaos(sc, seed, fn)
}
